"""Unit tests for mobility and the start-up priority function PF."""

from repro.core import (
    fifo_priority,
    mobility,
    mobility_map,
    paper_priority,
    volume_only_priority,
)
from repro.core.priority import mobility_only_priority


class TestMobility:
    def test_alap_based(self, figure1):
        alap = mobility_map(figure1)
        # critical-path nodes have no slack at their ALAP slot
        assert mobility(alap, "B", 2) == 0
        assert mobility(alap, "C", 2) == 1  # C can wait one step

    def test_goes_negative_when_overdue(self, figure1):
        alap = mobility_map(figure1)
        assert mobility(alap, "B", 4) < 0


class TestPaperPriority:
    def test_b_before_c_at_cs2(self, figure1):
        # the paper's walk-through: B outranks C at control step 2
        alap = mobility_map(figure1)
        finish = {"A": 1}
        pf_b = paper_priority(figure1, alap, finish, "B", 2)
        pf_c = paper_priority(figure1, alap, finish, "C", 2)
        assert pf_b > pf_c

    def test_root_scores_inverse_mobility(self, figure1):
        alap = mobility_map(figure1)
        assert paper_priority(figure1, alap, {}, "A", 1) == -mobility(
            alap, "A", 1
        )

    def test_volume_raises_priority(self, figure1):
        # E receives volume 2 from B but volume 1 from C
        alap = mobility_map(figure1)
        f1 = {"A": 1, "B": 3, "C": 3}
        score = paper_priority(figure1, alap, f1, "E", 4)
        # dominated by the max over producers: B's volume-2 edge
        assert score >= 2 - (4 - (3 + 1)) - mobility(alap, "E", 4)

    def test_deferral_decays_priority(self, figure1):
        alap = mobility_map(figure1)
        finish = {"A": 1}
        early = paper_priority(figure1, alap, finish, "C", 2)
        late = paper_priority(figure1, alap, finish, "C", 4)
        # mobility shrinks as cs grows (raising PF) while deferral
        # lowers it; for C the two effects cancel exactly
        assert early == late

    def test_delayed_producers_ignored(self, figure1):
        alap = mobility_map(figure1)
        # A's producer D connects through a delayed edge only
        assert paper_priority(figure1, alap, {"D": 4}, "A", 5) == -mobility(
            alap, "A", 5
        )


class TestAblationPriorities:
    def test_fifo_constant(self, figure1):
        alap = mobility_map(figure1)
        assert fifo_priority(figure1, alap, {}, "A", 1) == 0.0
        assert fifo_priority(figure1, alap, {"A": 1}, "B", 2) == 0.0

    def test_mobility_only(self, figure1):
        alap = mobility_map(figure1)
        assert mobility_only_priority(
            figure1, alap, {}, "B", 2
        ) > mobility_only_priority(figure1, alap, {}, "C", 2)

    def test_volume_only(self, figure1):
        alap = mobility_map(figure1)
        finish = {"A": 1, "B": 3, "C": 3}
        assert volume_only_priority(figure1, alap, finish, "E", 4) == 2.0
        assert volume_only_priority(figure1, alap, {}, "A", 1) == 0.0
