"""Unit tests for the hardened optimiser budgets (deadline, recovery)."""

import pytest

import repro.core.cyclo as cyclo_mod
from repro.arch import Mesh2D
from repro.core import CycloConfig, cyclo_compact
from repro.errors import SchedulingError
from repro.schedule import collect_violations
from repro.workloads import figure1_csdfg, figure7_csdfg


class TestDeadline:
    def test_exhausted_deadline_returns_best_legal(self):
        graph = figure7_csdfg()
        arch = Mesh2D(2, 4)
        result = cyclo_compact(
            graph, arch, config=CycloConfig(deadline_seconds=0.0)
        )
        assert result.stop_reason == "deadline"
        assert result.trace.records == []  # stopped before pass 1
        # the contract: whatever the budget, the result is legal
        assert collect_violations(result.graph, arch, result.schedule) == []
        assert result.schedule.length == result.initial_length

    def test_deadline_preserves_working_state_for_checkpoint(self):
        graph = figure1_csdfg()
        arch = Mesh2D(2, 2)
        result = cyclo_compact(
            graph, arch, config=CycloConfig(deadline_seconds=0.0)
        )
        assert result.final_schedule is not None
        assert result.final_graph is not None
        assert set(result.final_retiming) == set(result.final_graph.nodes())

    def test_no_deadline_runs_to_completion(self):
        graph = figure1_csdfg()
        arch = Mesh2D(2, 2)
        result = cyclo_compact(
            graph, arch, config=CycloConfig(max_iterations=6)
        )
        assert result.stop_reason in ("completed", "converged", "patience")

    def test_negative_deadline_rejected(self):
        with pytest.raises(SchedulingError):
            CycloConfig(deadline_seconds=-1.0)


class TestRecoverOnError:
    @pytest.fixture
    def exploding_remap(self, monkeypatch):
        """Make the first remapping pass raise mid-flight."""
        def boom(*args, **kwargs):
            raise RuntimeError("injected pass failure")

        monkeypatch.setattr(cyclo_mod, "remap_nodes", boom)

    def test_default_propagates(self, exploding_remap):
        graph = figure1_csdfg()
        arch = Mesh2D(2, 2)
        with pytest.raises(RuntimeError, match="injected"):
            cyclo_compact(graph, arch)

    def test_recover_returns_best_legal(self, exploding_remap):
        graph = figure1_csdfg()
        arch = Mesh2D(2, 2)
        result = cyclo_compact(
            graph, arch, config=CycloConfig(recover_on_error=True)
        )
        assert result.stop_reason == "error"
        assert collect_violations(result.graph, arch, result.schedule) == []
        # nothing was accepted before the explosion: best == initial
        assert result.schedule.length == result.initial_length


class TestConfigRoundtrip:
    def test_to_from_dict(self):
        cfg = CycloConfig(
            relaxation=False,
            max_iterations=17,
            patience=3,
            validate_each_step=False,
            pipelined_pes=True,
            remap_strategy="first-fit",
            deadline_seconds=2.5,
            recover_on_error=True,
        )
        assert CycloConfig.from_dict(cfg.to_dict()) == cfg

    def test_unknown_key_rejected(self):
        with pytest.raises(TypeError):
            CycloConfig.from_dict({"warp_factor": 9})
