"""Unit tests for the rotation primitive (node-set retiming)."""

import pytest

from repro.errors import IllegalRetimingError
from repro.retiming import can_rotate, rotate_nodes, unrotate_nodes


class TestCanRotate:
    def test_root_with_delayed_inputs(self, figure1):
        assert can_rotate(figure1, ["A"])

    def test_zero_delay_input_blocks(self, figure1):
        assert not can_rotate(figure1, ["B"])

    def test_internal_edges_ignored(self, figure1):
        # rotating {A, B} only needs delays on edges *entering* the set;
        # A->B is internal
        assert can_rotate(figure1, ["A", "B"])
        assert not can_rotate(figure1, ["A", "E"])  # B->E, C->E enter with d=0


class TestRotate:
    def test_single_node(self, figure1):
        rotate_nodes(figure1, ["A"])
        assert figure1.delay("D", "A") == 2
        assert figure1.delay("A", "B") == 1

    def test_set_keeps_internal_edges(self, figure1):
        rotate_nodes(figure1, ["A", "B"])
        assert figure1.delay("A", "B") == 0  # internal, untouched
        assert figure1.delay("D", "A") == 2  # entering
        assert figure1.delay("B", "D") == 1  # leaving
        assert figure1.delay("B", "E") == 1  # leaving

    def test_illegal_rotation_leaves_graph_untouched(self, figure1):
        before = figure1.copy()
        with pytest.raises(IllegalRetimingError):
            rotate_nodes(figure1, ["B"])
        assert figure1.structurally_equal(before)

    def test_amount(self, figure1):
        rotate_nodes(figure1, ["A"], amount=2)
        assert figure1.delay("D", "A") == 1
        assert figure1.delay("A", "C") == 2

    def test_negative_amount_rejected(self, figure1):
        with pytest.raises(IllegalRetimingError):
            rotate_nodes(figure1, ["A"], amount=-1)


class TestUnrotate:
    def test_round_trip(self, figure1):
        before = figure1.copy()
        rotate_nodes(figure1, ["A"])
        unrotate_nodes(figure1, ["A"])
        assert figure1.structurally_equal(before)

    def test_set_round_trip(self, figure7):
        before = figure7.copy()
        roots = figure7.roots()
        rotate_nodes(figure7, roots)
        unrotate_nodes(figure7, roots)
        assert figure7.structurally_equal(before)

    def test_illegal_unrotate(self, figure1):
        # unrotating A draws from leaving edges A->B (d=0): illegal
        with pytest.raises(IllegalRetimingError):
            unrotate_nodes(figure1, ["A"])
