"""Unit tests for the ETF baseline scheduler."""

import pytest

from repro.arch import CompletelyConnected, LinearArray, Mesh2D
from repro.baselines import etf_schedule
from repro.errors import SchedulingError
from repro.graph import CSDFG
from repro.schedule import is_valid_schedule


class TestEtf:
    def test_always_valid(self, figure1, figure7, mesh2x2):
        for g in (figure1, figure7):
            for arch in (mesh2x2, LinearArray(4), CompletelyConnected(4)):
                s = etf_schedule(g, arch)
                assert is_valid_schedule(g, arch, s), (g.name, arch.name)

    def test_empty_graph_rejected(self):
        with pytest.raises(SchedulingError):
            etf_schedule(CSDFG(), CompletelyConnected(2))

    def test_respects_comm_cost(self):
        # chain u -> v with a heavy message: ETF keeps them co-located
        g = CSDFG("g")
        g.add_node("u", 1)
        g.add_node("v", 1)
        g.add_edge("u", "v", 0, 5)
        arch = LinearArray(4)
        s = etf_schedule(g, arch)
        assert s.processor("u") == s.processor("v")
        assert s.length == 2

    def test_exploits_parallelism(self):
        g = CSDFG("wide")
        for n in "abcd":
            g.add_node(n, 2)
        arch = CompletelyConnected(4)
        s = etf_schedule(g, arch)
        assert s.length == 2  # all four in parallel

    def test_pad_for_delayed_edges(self):
        g = CSDFG("g")
        g.add_node("u", 1)
        g.add_node("v", 1)
        g.add_edge("u", "v", 0, 1)
        g.add_edge("v", "u", 1, 8)
        arch = Mesh2D(2, 2)
        s = etf_schedule(g, arch)
        assert is_valid_schedule(g, arch, s)
        raw = etf_schedule(g, arch, pad_for_delayed_edges=False)
        assert raw.length == raw.makespan

    def test_cyclo_beats_or_ties_etf(self, figure7):
        from repro.core import CycloConfig, cyclo_compact

        arch = Mesh2D(2, 4)
        etf_len = etf_schedule(figure7, arch).length
        cfg = CycloConfig(max_iterations=40, validate_each_step=False)
        ours = cyclo_compact(figure7, arch, config=cfg).final_length
        assert ours <= etf_len
