"""Unit tests for the text/JSON/SARIF report emitters."""

import json

import pytest

from repro.analyze import (
    RULES,
    AnalysisReport,
    make,
    render_report,
    to_json,
    to_sarif,
)
from repro.errors import AnalysisError


@pytest.fixture
def report():
    r = AnalysisReport(subject="unit test")
    r.add(make("RA101", "cycle a -> b -> a", node="a"))
    r.add(make("RA103", "node 'ghost' has no incident edges", node="ghost"))
    r.add(make("RA305", "length >= 7"))
    r.add(make(
        "RL102", "time.time() in repro.core.cyclo",
        file="src/repro/core/cyclo.py", line=12, col=4,
    ))
    r.suppressed = 2
    return r


class TestText:
    def test_counts_and_ordering(self, report):
        text = render_report(report, "text")
        lines = text.splitlines()
        assert "2 error(s), 1 warning(s), 1 info(s), 2 suppressed" in lines[0]
        # errors come first regardless of insertion order, then the
        # warning, then infos
        assert "RA101" in lines[1]
        assert "RL102" in lines[2]
        assert "RA103" in lines[3]

    def test_locus_rendering(self, report):
        text = render_report(report, "text")
        assert "[node a]" in text
        assert "src/repro/core/cyclo.py:12" in text

    def test_unknown_format_raises(self, report):
        with pytest.raises(AnalysisError, match="unknown output format"):
            render_report(report, "xml")


class TestJson:
    def test_shape(self, report):
        payload = json.loads(render_report(report, "json"))
        assert payload == to_json(report)
        assert payload["format"] == "repro-analysis"
        assert payload["version"] == 1
        assert payload["subject"] == "unit test"
        assert payload["counts"] == {"error": 2, "warning": 1, "info": 1}
        assert payload["suppressed"] == 2
        assert payload["ok"] is False

    def test_diagnostics_carry_stable_codes_and_loci(self, report):
        payload = to_json(report)
        by_code = {d["code"]: d for d in payload["diagnostics"]}
        assert by_code["RA101"]["node"] == "a"
        assert by_code["RL102"]["file"] == "src/repro/core/cyclo.py"
        assert by_code["RL102"]["line"] == 12
        # unset locus keys are omitted, not null
        assert "file" not in by_code["RA101"]

    def test_clean_report_is_ok(self):
        payload = to_json(AnalysisReport(subject="clean"))
        assert payload["ok"] is True and payload["diagnostics"] == []


class TestSarif:
    def test_envelope(self, report):
        sarif = to_sarif(report)
        assert sarif["version"] == "2.1.0"
        assert "sarif-schema-2.1.0" in sarif["$schema"]
        [run] = sarif["runs"]
        assert run["tool"]["driver"]["name"] == "repro-analyze"

    def test_rules_cover_exactly_the_present_codes(self, report):
        [run] = to_sarif(report)["runs"]
        ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert sorted(ids) == ["RA101", "RA103", "RA305", "RL102"]
        for entry in run["tool"]["driver"]["rules"]:
            assert entry["name"] == RULES[entry["id"]].title
            assert entry["fullDescription"]["text"]

    def test_results_reference_rules_by_index(self, report):
        [run] = to_sarif(report)["runs"]
        ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        for result in run["results"]:
            assert ids[result["ruleIndex"]] == result["ruleId"]

    def test_severity_level_mapping(self, report):
        [run] = to_sarif(report)["runs"]
        levels = {r["ruleId"]: r["level"] for r in run["results"]}
        assert levels["RA101"] == "error"
        assert levels["RA103"] == "warning"
        assert levels["RA305"] == "note"

    def test_file_locus_becomes_physical_location(self, report):
        [run] = to_sarif(report)["runs"]
        [rl102] = [r for r in run["results"] if r["ruleId"] == "RL102"]
        physical = rl102["locations"][0]["physicalLocation"]
        assert physical["artifactLocation"]["uri"] == "src/repro/core/cyclo.py"
        assert physical["region"] == {"startLine": 12, "startColumn": 5}

    def test_node_locus_becomes_logical_location(self, report):
        [run] = to_sarif(report)["runs"]
        [ra101] = [r for r in run["results"] if r["ruleId"] == "RA101"]
        logical = ra101["locations"][0]["logicalLocations"][0]
        assert logical["fullyQualifiedName"] == "node a"

    def test_suppressed_findings_never_appear(self):
        # suppression happens in the lint head before the report is
        # built; the emitters must not resurrect anything
        from repro.analyze import lint_source

        src = "import time\nt = time.time()  # repro-lint: disable=RL102\n"
        found, suppressed = lint_source(src, module="repro.core.cyclo")
        r = AnalysisReport(subject="x")
        r.extend(found)
        r.suppressed = suppressed
        [run] = to_sarif(r)["runs"]
        assert run["results"] == [] and r.suppressed == 1

    def test_sarif_is_json_serializable_for_every_rule(self):
        r = AnalysisReport(subject="all")
        for code in RULES:
            r.add(make(code, f"synthetic {code}"))
        text = render_report(r, "sarif")
        parsed = json.loads(text)
        assert len(parsed["runs"][0]["results"]) == len(RULES)


class TestSarifConformance:
    """SARIF 2.1.0 details consumers actually reject: regions are
    1-indexed, URIs are percent-encoded, and the whole document
    round-trips through its own serialization."""

    def test_zero_line_is_clamped_to_one(self):
        r = AnalysisReport()
        r.add(make("RL102", "module-level clock read",
                   file="src/repro/x.py", line=0, col=0))
        [run] = to_sarif(r)["runs"]
        region = (run["results"][0]["locations"][0]
                  ["physicalLocation"]["region"])
        assert region == {"startLine": 1, "startColumn": 1}

    def test_negative_column_is_clamped(self):
        r = AnalysisReport()
        r.add(make("RL102", "x", file="a.py", line=3, col=-1))
        [run] = to_sarif(r)["runs"]
        region = (run["results"][0]["locations"][0]
                  ["physicalLocation"]["region"])
        assert region["startLine"] == 3 and region["startColumn"] == 1

    def test_column_is_one_indexed(self):
        # ast reports 0-indexed col_offset; SARIF wants 1-indexed
        r = AnalysisReport()
        r.add(make("RL102", "x", file="a.py", line=3, col=4))
        [run] = to_sarif(r)["runs"]
        region = (run["results"][0]["locations"][0]
                  ["physicalLocation"]["region"])
        assert region["startColumn"] == 5

    def test_non_ascii_uri_is_percent_encoded(self):
        r = AnalysisReport()
        r.add(make("RL102", "x", file="src/répro/naïve file.py", line=1))
        [run] = to_sarif(r)["runs"]
        uri = (run["results"][0]["locations"][0]
               ["physicalLocation"]["artifactLocation"]["uri"])
        assert uri == "src/r%C3%A9pro/na%C3%AFve%20file.py"
        assert uri.isascii() and " " not in uri

    def test_windows_separators_are_normalized(self):
        r = AnalysisReport()
        r.add(make("RL102", "x", file="src\\repro\\x.py", line=1))
        [run] = to_sarif(r)["runs"]
        uri = (run["results"][0]["locations"][0]
               ["physicalLocation"]["artifactLocation"]["uri"])
        assert uri == "src/repro/x.py"

    def test_round_trip(self, report):
        # serialize, re-parse, and re-check the invariants a SARIF
        # viewer relies on — all from the parsed copy, not the dict
        # we built
        parsed = json.loads(render_report(report, "sarif"))
        assert parsed["version"] == "2.1.0"
        [run] = parsed["runs"]
        rules = run["tool"]["driver"]["rules"]
        ids = [r["id"] for r in rules]
        assert len(ids) == len(set(ids))
        for result in run["results"]:
            assert ids[result["ruleIndex"]] == result["ruleId"]
            assert result["message"]["text"]
            assert result["level"] in ("error", "warning", "note")
            for loc in result.get("locations", []):
                physical = loc.get("physicalLocation")
                if physical is None:
                    continue
                region = physical["region"]
                assert region["startLine"] >= 1
                assert region["startColumn"] >= 1
                assert physical["artifactLocation"]["uri"].isascii()
