"""Unit tests for the ScheduleTable structure."""

import pytest

from repro.errors import PlacementConflictError, ScheduleError
from repro.schedule import Placement, ScheduleTable


class TestPlacement:
    def test_finish(self):
        p = Placement("a", 0, 3, 2)
        assert p.finish == 4

    def test_shifted(self):
        p = Placement("a", 1, 3, 2).shifted(-1)
        assert p.start == 2 and p.pe == 1 and p.duration == 2

    def test_rejects_bad_fields(self):
        with pytest.raises(ScheduleError):
            Placement("a", 0, 0, 1)
        with pytest.raises(ScheduleError):
            Placement("a", 0, 1, 0)
        with pytest.raises(ScheduleError):
            Placement("a", -1, 1, 1)


class TestPlaceRemove:
    def test_place_and_accessors(self):
        t = ScheduleTable(2)
        t.place("a", 0, 1, 2)
        assert t.start("a") == 1
        assert t.finish("a") == 2
        assert t.processor("a") == 0
        assert t.cell(0, 2) == "a"
        assert t.cell(0, 3) is None
        assert "a" in t

    def test_length_grows(self):
        t = ScheduleTable(1)
        t.place("a", 0, 5, 3)
        assert t.length == 7
        assert t.makespan == 7

    def test_conflict_detected(self):
        t = ScheduleTable(1)
        t.place("a", 0, 1, 3)
        with pytest.raises(PlacementConflictError):
            t.place("b", 0, 3, 1)

    def test_double_place_rejected(self):
        t = ScheduleTable(2)
        t.place("a", 0, 1, 1)
        with pytest.raises(ScheduleError, match="already scheduled"):
            t.place("a", 1, 5, 1)

    def test_pe_out_of_range(self):
        t = ScheduleTable(2)
        with pytest.raises(ScheduleError):
            t.place("a", 2, 1, 1)

    def test_remove_frees_cells(self):
        t = ScheduleTable(1)
        t.place("a", 0, 1, 2)
        removed = t.remove("a")
        assert removed.start == 1
        assert t.cell(0, 1) is None
        t.place("b", 0, 1, 2)  # no conflict now

    def test_remove_unscheduled_raises(self):
        with pytest.raises(ScheduleError):
            ScheduleTable(1).remove("ghost")

    def test_processor_map(self):
        t = ScheduleTable(2)
        t.place("a", 0, 1, 1)
        t.place("b", 1, 1, 1)
        assert t.processor_map() == {"a": 0, "b": 1}


class TestLengthControl:
    def test_set_length_pads(self):
        t = ScheduleTable(1)
        t.place("a", 0, 1, 1)
        t.set_length(5)
        assert t.length == 5
        assert t.makespan == 1

    def test_set_length_cannot_cut(self):
        t = ScheduleTable(1)
        t.place("a", 0, 1, 3)
        with pytest.raises(ScheduleError):
            t.set_length(2)

    def test_trim(self):
        t = ScheduleTable(1, length=9)
        t.place("a", 0, 1, 2)
        t.trim()
        assert t.length == 2


class TestShift:
    def test_shift_all(self):
        t = ScheduleTable(2)
        t.place("a", 0, 2, 1)
        t.place("b", 1, 3, 2)
        t.shift_all(-1)
        assert t.start("a") == 1
        assert t.finish("b") == 3
        assert t.length == 3

    def test_shift_empty(self):
        t = ScheduleTable(1, length=4)
        t.shift_all(-1)
        assert t.length == 3


class TestSlotSearch:
    def test_is_free(self):
        t = ScheduleTable(1)
        t.place("a", 0, 3, 2)
        assert t.is_free(0, 1, 2)
        assert not t.is_free(0, 2, 2)
        assert not t.is_free(0, 4, 1)
        assert t.is_free(0, 5, 10)
        assert not t.is_free(0, 0, 1)  # control steps start at 1

    def test_earliest_slot_simple(self):
        t = ScheduleTable(1)
        t.place("a", 0, 2, 2)
        assert t.earliest_slot(0, 1, 1) == 1
        assert t.earliest_slot(0, 1, 2) == 4
        assert t.earliest_slot(0, 3, 1) == 4

    def test_earliest_slot_horizon(self):
        t = ScheduleTable(1)
        t.place("a", 0, 1, 3)
        assert t.earliest_slot(0, 1, 2, horizon=4) is None
        assert t.earliest_slot(0, 1, 2, horizon=5) == 4

    def test_earliest_slot_unbounded_past_everything(self):
        t = ScheduleTable(1)
        t.place("a", 0, 1, 1)
        assert t.earliest_slot(0, 100, 3) == 100


class TestRowsAndViews:
    def test_first_row_pe_order(self):
        t = ScheduleTable(3)
        t.place("c", 2, 1, 1)
        t.place("a", 0, 1, 2)
        t.place("b", 1, 2, 1)
        assert t.first_row() == ["a", "c"]

    def test_row(self):
        t = ScheduleTable(2)
        t.place("a", 0, 1, 2)
        t.place("b", 1, 2, 1)
        assert t.row(2) == [(0, "a"), (1, "b")]

    def test_pe_tasks_sorted(self):
        t = ScheduleTable(1)
        t.place("b", 0, 4, 1)
        t.place("a", 0, 1, 2)
        assert [p.node for p in t.pe_tasks(0)] == ["a", "b"]

    def test_busy_cells(self):
        t = ScheduleTable(2)
        t.place("a", 0, 1, 3)
        t.place("b", 1, 1, 1)
        assert t.busy_cells(0) == 3
        assert t.busy_cells(1) == 1


class TestCopy:
    def test_copy_independent(self):
        t = ScheduleTable(1)
        t.place("a", 0, 1, 1)
        c = t.copy()
        c.remove("a")
        assert "a" in t
        assert "a" not in c

    def test_same_placements(self):
        t = ScheduleTable(1)
        t.place("a", 0, 1, 1)
        c = t.copy()
        assert t.same_placements(c)
        c.remove("a")
        c.place("a", 0, 2, 1)
        assert not t.same_placements(c)


class TestInstrumentationTallies:
    def test_probes_count_index_queries(self):
        t = ScheduleTable(2)
        t.place("a", 0, 1, 2)
        assert t.probes == 0
        t.cell(0, 1)
        t.is_free(0, 3, 1)
        t.earliest_slot(0, 1, 1)
        list(t.free_slots(0, 1, 1, 5))
        assert t.probes == 4
        t.cell(9, 1)  # out-of-range PE: answered without an index probe
        assert t.probes == 4

    def test_shifts_count_whole_table_moves(self):
        t = ScheduleTable(1)
        t.place("a", 0, 2, 1)
        t.shift_all(1)
        t.shift_all(-1)
        t.shift_all(0)  # no-op shift is not counted
        assert t.shifts == 2

    def test_copy_starts_from_fresh_tallies(self):
        t = ScheduleTable(1)
        t.place("a", 0, 2, 1)
        t.cell(0, 2)
        t.shift_all(1)
        c = t.copy()
        assert (t.probes, t.shifts) == (1, 1)
        assert (c.probes, c.shifts) == (0, 0)

    def test_publish_stats_lands_in_registry(self):
        from repro.obs import InMemorySink, metrics, sink_installed

        t = ScheduleTable(1)
        t.place("a", 0, 2, 1)
        t.cell(0, 2)
        t.cell(0, 1)
        t.shift_all(-1)
        with sink_installed(InMemorySink()):
            t.publish_stats()
        snap = metrics.snapshot()
        assert snap["counters"]["schedule.table.probes"] == 2
        assert snap["counters"]["schedule.table.shifts"] == 1
