"""Unit tests for sharded best-of-N restarts (repro.perf.restarts).

The load-bearing guarantee is **jobs-invariance**: for a fixed
``(seed, restarts, stage_passes)`` the winner, every restart's length
and the winning placements are identical whatever ``--jobs`` is — the
worker count may only change wall-clock time.  The second guarantee is
monotonicity: restart 0 runs the plain paper priority, so best-of-N is
never worse than the single run it generalises.
"""

import pytest

from repro.arch import make_architecture
from repro.core import CycloConfig, cyclo_compact
from repro.errors import SchedulingError
from repro.perf import best_of_restarts
from repro.perf.restarts import JitteredPriority
from repro.qa import sample_graph
from repro.schedule import collect_violations
from repro.workloads import make_workload

CFG = CycloConfig(max_iterations=20, validate_each_step=False)


def report_key(report):
    return (
        report.winner.index,
        report.final_length,
        [(o.index, o.length, o.passes, o.stop_reason)
         for o in report.outcomes],
    )


class TestJobsInvariance:
    def test_winner_identical_across_jobs(self):
        graph = sample_graph(3)
        arch = make_architecture("mesh", 4)
        serial = best_of_restarts(
            graph, arch, CFG, restarts=3, jobs=1, seed=7, stage_passes=4
        )
        sharded = best_of_restarts(
            graph, arch, CFG, restarts=3, jobs=2, seed=7, stage_passes=4
        )
        assert report_key(serial) == report_key(sharded)
        assert serial.schedule.same_placements(sharded.schedule)
        assert serial.retiming == sharded.retiming

    def test_repeatable_for_fixed_seed(self):
        graph = make_workload("figure7")
        arch = make_architecture("hypercube", 8)
        a = best_of_restarts(graph, arch, CFG, restarts=2, seed=3)
        b = best_of_restarts(graph, arch, CFG, restarts=2, seed=3)
        assert report_key(a) == report_key(b)


class TestBestOfN:
    def test_never_worse_than_single_run(self):
        graph = sample_graph(3)
        arch = make_architecture("mesh", 4)
        single = cyclo_compact(graph, arch, config=CFG)
        report = best_of_restarts(
            graph, arch, CFG, restarts=3, seed=7, stage_passes=4
        )
        assert report.final_length <= single.final_length

    def test_winning_schedule_is_legal(self):
        graph = make_workload("figure7")
        arch = make_architecture("mesh", 8)
        report = best_of_restarts(graph, arch, CFG, restarts=2, seed=1)
        assert collect_violations(
            report.graph, arch, report.schedule
        ) == []
        assert report.final_length == report.schedule.length

    def test_single_restart_matches_plain_run(self):
        graph = make_workload("figure7")
        arch = make_architecture("mesh", 8)
        single = cyclo_compact(graph, arch, config=CFG)
        report = best_of_restarts(graph, arch, CFG, restarts=1, seed=9)
        assert report.final_length == single.final_length
        assert report.schedule.same_placements(single.schedule)

    def test_outcomes_cover_every_restart(self):
        graph = sample_graph(3)
        arch = make_architecture("mesh", 4)
        report = best_of_restarts(
            graph, arch, CFG, restarts=3, seed=7, stage_passes=4
        )
        assert [o.index for o in report.outcomes] == [0, 1, 2]
        assert report.winner.length == min(
            o.length for o in report.outcomes
        )
        allowed = {
            "completed", "converged", "patience", "pruned", "lower-bound"
        }
        assert {o.stop_reason for o in report.outcomes} <= allowed


class TestValidation:
    def test_restarts_must_be_positive(self):
        graph = make_workload("figure7")
        arch = make_architecture("mesh", 8)
        with pytest.raises(SchedulingError):
            best_of_restarts(graph, arch, CFG, restarts=0)

    def test_stage_passes_must_be_positive(self):
        graph = make_workload("figure7")
        arch = make_architecture("mesh", 8)
        with pytest.raises(SchedulingError):
            best_of_restarts(graph, arch, CFG, restarts=2, stage_passes=0)


class TestJitteredPriority:
    def test_deterministic_and_in_unit_interval(self):
        graph = make_workload("figure7")
        from repro.core.mobility import mobility_map
        from repro.core.priority import paper_priority

        alap = mobility_map(graph)
        node = next(iter(graph.nodes()))
        p = JitteredPriority(5, 2)
        base = paper_priority(graph, alap, {}, node, 1)
        val = p(graph, alap, {}, node, 1)
        assert val == p(graph, alap, {}, node, 1)
        assert 0.0 <= val - base < 1.0

    def test_picklable(self):
        import pickle

        p = JitteredPriority(5, 2)
        q = pickle.loads(pickle.dumps(p))
        assert (q.seed, q.index) == (5, 2)
