"""Unit tests for the input-analyzer rules (RA1xx-RA3xx) and catalogue."""

import pytest

from repro.analyze import (
    RULES,
    AnalysisReport,
    Diagnostic,
    analyze_inputs,
    build_architecture,
    check_arch,
    check_config,
    check_graph,
    check_graph_payload,
    check_target_length,
    length_lower_bound,
    load_graph_input,
    make,
    rule,
)
from repro.arch import make_architecture
from repro.arch.degraded import DegradedTopology
from repro.core import CycloConfig
from repro.errors import AnalysisError
from repro.graph import CSDFG, iteration_bound
from repro.graph.io import to_json
from repro.workloads import make_workload


def codes(diags):
    return sorted(d.code for d in diags)


class TestCatalogue:
    def test_bands_are_consistent(self):
        for code, entry in RULES.items():
            assert entry.code == code
            assert code[:3] in (
                "RA1", "RA2", "RA3", "RA4", "RL1", "RD1", "RC2",
            )
            assert entry.title and entry.description

    def test_codes_are_stable(self):
        # the public contract: these exact codes exist (docs, CI
        # annotations and suppression comments all reference them);
        # removing or renumbering any of them is a breaking change
        assert set(RULES) >= {
            "RA101", "RA102", "RA103", "RA104", "RA105", "RA106",
            "RA107", "RA108",
            "RA201", "RA202", "RA203", "RA204", "RA205",
            "RA301", "RA302", "RA303", "RA304", "RA305",
            "RA401", "RA402", "RA403", "RA404", "RA405",
            "RL101", "RL102", "RL103", "RL104", "RL105", "RL106",
            "RL107", "RL108", "RL109",
            "RD101", "RD102", "RD103", "RD104",
            "RC201", "RC202", "RC203", "RC204",
        }

    def test_make_uses_catalogue_defaults(self):
        d = make("RA101", "boom")
        assert d.severity == "error"
        assert d.hint == RULES["RA101"].hint

    def test_make_allows_overrides(self):
        d = make("RA103", "boom", severity="info", hint="no")
        assert (d.severity, d.hint) == ("info", "no")

    def test_unknown_code_raises(self):
        with pytest.raises(AnalysisError, match="unknown rule code"):
            rule("RA999")
        with pytest.raises(AnalysisError):
            make("RA999", "boom")

    def test_diagnostic_rejects_bad_severity(self):
        with pytest.raises(ValueError, match="severity"):
            Diagnostic(code="RA101", severity="fatal", message="x")


class TestGraphRules:
    def test_clean_graph(self, figure1):
        assert check_graph(figure1) == []

    def test_empty_graph_is_ra102(self):
        assert codes(check_graph(CSDFG("empty"))) == ["RA102"]

    def test_zero_delay_cycle_is_ra101(self):
        g = CSDFG("dead")
        g.add_node("a", 1)
        g.add_node("b", 1)
        g.add_edge("a", "b", 0, 1)
        g.add_edge("b", "a", 0, 1)
        found = check_graph(g)
        assert "RA101" in codes(found)
        [d] = [d for d in found if d.code == "RA101"]
        assert d.severity == "error"

    def test_isolated_node_is_ra103(self, tiny_loop):
        tiny_loop.add_node("ghost", 1)
        assert "RA103" in codes(check_graph(tiny_loop))

    def test_disconnected_components_are_ra104(self, tiny_loop):
        tiny_loop.add_node("x", 1)
        tiny_loop.add_node("y", 1)
        tiny_loop.add_edge("x", "y", 1, 1)
        assert "RA104" in codes(check_graph(tiny_loop))


class TestGraphPayloadRules:
    def payload(self, **over):
        base = {
            "format": "repro-csdfg",
            "nodes": [{"id": "a", "time": 1}, {"id": "b", "time": 2}],
            "edges": [{"src": "a", "dst": "b", "delay": 1, "volume": 1}],
        }
        base.update(over)
        return base

    def test_clean_payload(self):
        assert check_graph_payload(self.payload()) == []

    def test_roundtrip_of_a_real_graph_is_clean(self, figure1):
        assert check_graph_payload(to_json(figure1)) == []

    def test_not_a_payload_is_ra108(self):
        assert codes(check_graph_payload([1, 2])) == ["RA108"]
        assert codes(check_graph_payload({"nodes": []})) == ["RA108"]

    def test_bad_time_is_ra105(self):
        p = self.payload(nodes=[{"id": "a", "time": 0}, {"id": "b"}])
        assert "RA105" in codes(check_graph_payload(p))

    def test_bad_delay_is_ra106(self):
        p = self.payload(edges=[{"src": "a", "dst": "b", "delay": -1}])
        assert "RA106" in codes(check_graph_payload(p))

    def test_bad_volume_is_ra107(self):
        p = self.payload(edges=[{"src": "a", "dst": "b", "volume": 0}])
        assert "RA107" in codes(check_graph_payload(p))

    def test_dangling_endpoint_is_ra108(self):
        p = self.payload(edges=[{"src": "a", "dst": "zz"}])
        assert "RA108" in codes(check_graph_payload(p))

    def test_duplicate_node_and_edge_are_ra108(self):
        p = self.payload(
            nodes=[{"id": "a"}, {"id": "a"}],
            edges=[{"src": "a", "dst": "a"}, {"src": "a", "dst": "a"}],
        )
        assert codes(check_graph_payload(p)).count("RA108") == 2


class TestArchRules:
    def test_healthy_machine_with_matched_graph_is_quiet(self, figure1):
        arch = make_architecture("mesh", 4)
        assert check_arch(arch, figure1) == []

    def test_surplus_pes_are_ra204(self, tiny_loop):
        arch = make_architecture("hypercube", 8)
        assert "RA204" in codes(check_arch(arch, tiny_loop))

    def test_degraded_diameter_blowup_is_ra205(self):
        # cutting a ring turns it into a line: diameter doubles
        ring = make_architecture("ring", 6)
        cut = DegradedTopology(ring, failed_links=((0, 5),))
        assert "RA205" in codes(check_arch(cut))

    def test_comm_blowup_is_ra203(self):
        g = CSDFG("heavy")
        g.add_node("a", 1)
        g.add_node("b", 1)
        g.add_edge("a", "b", 1, 50)  # one 50-word message, 2 cs of work
        arch = make_architecture("linear", 4)
        assert "RA203" in codes(check_arch(arch, g))


class TestBuildArchitecture:
    def test_builds_healthy(self):
        arch, diags = build_architecture("mesh", 4)
        assert arch is not None and diags == []

    def test_kind_pes_shorthand(self):
        arch, _ = build_architecture("ring:6", 99)
        assert arch.num_pes == 6

    def test_unknown_kind_is_ra202(self):
        arch, diags = build_architecture("torus", 4)
        assert arch is None and codes(diags) == ["RA202"]

    def test_unsupported_size_is_ra202(self):
        arch, diags = build_architecture("hypercube", 6)
        assert arch is None and codes(diags) == ["RA202"]

    def test_disconnecting_failure_is_ra201(self):
        # failing the middle PE of a 3-PE line strands the endpoints
        arch, diags = build_architecture("linear", 3, failed_pes=(1,))
        assert arch is None and codes(diags) == ["RA201"]

    def test_survivable_failure_builds_degraded(self):
        arch, diags = build_architecture("mesh", 4, failed_pes=(3,))
        assert isinstance(arch, DegradedTopology) and diags == []


class TestConfigAndBounds:
    def test_config_warnings(self):
        cfg = CycloConfig(max_iterations=0, deadline_seconds=0)
        assert codes(check_config(cfg)) == ["RA302", "RA303"]

    def test_default_config_is_quiet(self):
        assert check_config(CycloConfig()) == []

    def test_lower_bound_work_and_longest_task(self):
        g = CSDFG("w")
        g.add_node("a", 5)
        g.add_node("b", 1)
        g.add_edge("a", "b", 1, 1)
        arch = make_architecture("linear", 2)
        # work bound ceil(6/2)=3 < longest task 5
        assert length_lower_bound(g, arch) == 5

    def test_lower_bound_includes_iteration_bound(self, figure1):
        arch = make_architecture("complete", 8)
        b = length_lower_bound(figure1, arch)
        assert b >= iteration_bound(figure1)

    def test_pipelined_counts_issue_slots(self):
        g = CSDFG("p")
        for i in range(4):
            g.add_node(f"n{i}", 3)
        for i in range(3):
            g.add_edge(f"n{i}", f"n{i+1}", 1, 1)
        arch = make_architecture("linear", 2)
        plain = length_lower_bound(g, arch)          # ceil(12/2) = 6
        piped = length_lower_bound(
            g, arch, CycloConfig(pipelined_pes=True)
        )                                            # max(ceil(4/2), t=3)
        assert plain == 6 and piped == 3

    def test_infeasible_target_is_ra301(self, figure1, mesh2x2):
        found = check_target_length(figure1, mesh2x2, None, 1)
        assert codes(found) == ["RA301", "RA305"]

    def test_feasible_target_reports_only_the_bound(self, figure1, mesh2x2):
        found = check_target_length(figure1, mesh2x2, None, 100)
        assert codes(found) == ["RA305"]


class TestAnalyzeInputs:
    def test_clean_pair(self, figure1, mesh2x2):
        report = analyze_inputs(figure1, mesh2x2)
        assert report.ok and report.errors == []

    def test_report_aggregates_across_families(self, mesh2x2):
        g = CSDFG("bad")
        g.add_node("a", 1)
        g.add_node("b", 1)
        g.add_edge("a", "b", 0, 1)
        g.add_edge("b", "a", 0, 1)
        g.add_node("ghost", 1)
        report = analyze_inputs(g, mesh2x2, target_length=1)
        assert not report.ok
        assert {"RA101", "RA103"} <= set(report.codes())

    def test_analyzer_rejects_what_the_optimizer_would(self, mesh2x2):
        # the tentpole acceptance property, in miniature: a target below
        # the provable bound is rejected statically
        graph = make_workload("biquad4")
        report = analyze_inputs(graph, mesh2x2, target_length=1)
        assert "RA301" in report.codes() and not report.ok

    def test_exit_codes(self):
        clean = AnalysisReport()
        clean.add(make("RA305", "bound"))
        assert clean.exit_code() == 0
        warned = AnalysisReport()
        warned.add(make("RA103", "dead"))
        assert warned.exit_code() == 0
        assert warned.exit_code(strict=True) == 1
        failed = AnalysisReport()
        failed.add(make("RA101", "cycle"))
        assert failed.exit_code() == 1 and failed.exit_code(strict=True) == 1


class TestLoadGraphInput:
    def test_workload_name(self):
        graph, diags = load_graph_input("fir8")
        assert graph is not None and diags == []

    def test_unknown_spec_is_ra108(self):
        graph, diags = load_graph_input("no-such-workload")
        assert graph is None and codes(diags) == ["RA108"]

    def test_json_file(self, tmp_path, figure1):
        import json

        path = tmp_path / "g.json"
        path.write_text(json.dumps(to_json(figure1)))
        graph, diags = load_graph_input(str(path))
        assert graph is not None and diags == []
        assert graph.num_nodes == figure1.num_nodes

    def test_bad_json_file_is_ra108(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{nope")
        graph, diags = load_graph_input(str(path))
        assert graph is None and codes(diags) == ["RA108"]

    def test_out_of_domain_payload_becomes_coded_diagnostics(self, tmp_path):
        import json

        path = tmp_path / "bad.json"
        path.write_text(json.dumps({
            "format": "repro-csdfg",
            "nodes": [{"id": "a", "time": 0}],
            "edges": [],
        }))
        graph, diags = load_graph_input(str(path))
        assert graph is None and codes(diags) == ["RA105"]
