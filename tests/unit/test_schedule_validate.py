"""Unit tests for the static cyclic schedule validator."""

import pytest

from repro.arch import CompletelyConnected, LinearArray
from repro.errors import ScheduleValidationError
from repro.graph import CSDFG
from repro.schedule import (
    ScheduleTable,
    collect_violations,
    is_valid_schedule,
    minimum_feasible_length,
    validate_schedule,
)


def two_node_graph(delay=0, volume=1):
    g = CSDFG("g")
    g.add_node("u", 1)
    g.add_node("v", 1)
    g.add_edge("u", "v", delay, volume)
    return g


class TestCompleteness:
    def test_missing_node(self):
        g = two_node_graph()
        t = ScheduleTable(2)
        t.place("u", 0, 1, 1)
        issues = collect_violations(g, CompletelyConnected(2), t)
        assert any("not scheduled" in i for i in issues)

    def test_extra_node(self):
        g = two_node_graph()
        t = ScheduleTable(2)
        t.place("u", 0, 1, 1)
        t.place("v", 0, 2, 1)
        t.place("ghost", 1, 1, 1)
        issues = collect_violations(g, CompletelyConnected(2), t)
        assert any("not in the graph" in i for i in issues)

    def test_wrong_duration(self):
        g = CSDFG("g")
        g.add_node("u", 3)
        arch = CompletelyConnected(1)
        t = ScheduleTable(1)
        t.place("u", 0, 1, 1)
        issues = collect_violations(g, arch, t)
        # the message names the node, the PE and the architecture
        assert any(
            "duration" in i and "'u'" in i and "pe1" in i and arch.name in i
            for i in issues
        )

    def test_pe_outside_architecture(self):
        g = CSDFG("g")
        g.add_node("u", 1)
        arch = CompletelyConnected(2)
        t = ScheduleTable(4)
        t.place("u", 3, 1, 1)
        issues = collect_violations(g, arch, t)
        assert any(
            "outside architecture" in i and "'u'" in i and arch.name in i
            for i in issues
        )

    def test_finish_beyond_length(self):
        g = CSDFG("g")
        g.add_node("u", 2)
        t = ScheduleTable(1)
        t.place("u", 0, 1, 2)
        # sabotage: shrink length bypassing the setter guard
        t._length = 1
        issues = collect_violations(g, CompletelyConnected(1), t)
        assert any(
            "beyond length" in i and "'u'" in i and "pe1" in i
            for i in issues
        )

    def test_placed_on_failed_pe(self):
        from repro.arch import DegradedTopology

        g = CSDFG("g")
        g.add_node("u", 1)
        arch = DegradedTopology(CompletelyConnected(3), failed_pes=[2])
        t = ScheduleTable(3)
        t.place("u", 2, 1, 1)
        issues = collect_violations(g, arch, t)
        assert any(
            "placed on failed pe3" in i and "'u'" in i and arch.name in i
            for i in issues
        )


class TestPrecedence:
    def test_same_pe_sequential_ok(self):
        g = two_node_graph()
        t = ScheduleTable(1)
        t.place("u", 0, 1, 1)
        t.place("v", 0, 2, 1)
        assert is_valid_schedule(g, CompletelyConnected(1), t)

    def test_same_cs_zero_delay_bad(self):
        g = two_node_graph()
        t = ScheduleTable(2)
        t.place("u", 0, 1, 1)
        t.place("v", 1, 1, 1)
        issues = collect_violations(g, CompletelyConnected(2), t)
        # names the edge, both PEs, and the violated inequality terms
        assert any(
            "dependence edge ('u', 'v')" in i
            and "pe1->pe2" in i
            and "CB('v')" in i
            for i in issues
        )

    def test_comm_cost_enforced(self):
        g = two_node_graph(volume=2)
        arch = LinearArray(3)
        t = ScheduleTable(3)
        t.place("u", 0, 1, 1)
        t.place("v", 2, 4, 1)  # needs CE(u)+M+1 = 1+4+1 = 6
        assert not is_valid_schedule(g, arch, t)
        t2 = ScheduleTable(3)
        t2.place("u", 0, 1, 1)
        t2.place("v", 2, 6, 1)
        assert is_valid_schedule(g, arch, t2)

    def test_delayed_edge_uses_length(self):
        g = two_node_graph(delay=1, volume=3)
        arch = LinearArray(2)
        t = ScheduleTable(2)
        t.place("u", 0, 1, 1)
        t.place("v", 1, 1, 1)
        # CB(v) + 1*L >= CE(u) + 3 + 1  =>  L >= 4
        t.set_length(4)
        assert is_valid_schedule(g, arch, t)
        t3 = t.copy()
        t3._length = 3
        assert not is_valid_schedule(g, arch, t3)

    def test_validate_raises(self):
        g = two_node_graph()
        t = ScheduleTable(2)
        t.place("u", 0, 1, 1)
        t.place("v", 1, 1, 1)
        with pytest.raises(ScheduleValidationError):
            validate_schedule(g, CompletelyConnected(2), t)


class TestResources:
    def test_overlap_reported(self):
        g = CSDFG("g")
        g.add_node("u", 2)
        g.add_node("v", 1)
        t = ScheduleTable(1)
        t.place("u", 0, 1, 2)
        # bypass the cell index to simulate a corrupted table
        t._placements["v"] = type(t.placement("u"))("v", 0, 2, 1)
        issues = collect_violations(g, CompletelyConnected(1), t)
        assert any(
            "resource conflict on pe1" in i and "'u'" in i and "'v'" in i
            for i in issues
        )


class TestMinimumFeasibleLength:
    def test_zero_delay_violation_unsalvageable(self):
        g = two_node_graph()
        t = ScheduleTable(2)
        t.place("u", 0, 1, 1)
        t.place("v", 1, 1, 1)
        assert minimum_feasible_length(g, CompletelyConnected(2), t) is None

    def test_delayed_edge_padding(self):
        g = two_node_graph(delay=2, volume=4)
        arch = LinearArray(2)
        t = ScheduleTable(2)
        t.place("u", 0, 1, 1)
        t.place("v", 1, 1, 1)
        # CB(v) + 2L >= 1 + 4 + 1  =>  L >= ceil(5/2) = 3
        assert minimum_feasible_length(g, arch, t) == 3

    def test_makespan_dominates(self):
        g = two_node_graph(delay=1)
        t = ScheduleTable(1)
        t.place("u", 0, 1, 1)
        t.place("v", 0, 5, 1)
        arch = CompletelyConnected(1)
        assert minimum_feasible_length(g, arch, t) == 5

    def test_missing_node_is_none(self):
        g = two_node_graph()
        t = ScheduleTable(1)
        t.place("u", 0, 1, 1)
        assert minimum_feasible_length(g, CompletelyConnected(1), t) is None

    def test_result_is_tight(self, figure1, mesh2x2):
        from repro.core import start_up_schedule

        s = start_up_schedule(figure1, mesh2x2)
        L = minimum_feasible_length(figure1, mesh2x2, s)
        assert L == s.length  # startup already padded to the minimum
        shrunk = s.copy()
        if L is not None and L > s.makespan:
            shrunk._length = L - 1
            assert not is_valid_schedule(figure1, mesh2x2, shrunk)
