"""Unit tests for the link-contention analysis and pricing extension."""

import pytest

from repro.arch import (
    CommCostCache,
    LinearArray,
    LinkOccupancy,
    NoContention,
    Ring,
    ScaledContention,
    SerializedContention,
    contended_cost,
    link_loads,
    make_contention_model,
)
from repro.errors import ArchitectureError
from repro.graph import CSDFG


def chain_graph():
    g = CSDFG("c")
    g.add_nodes("abc")
    g.add_edge("a", "b", 0, 2)
    g.add_edge("b", "c", 0, 3)
    g.add_edge("c", "a", 1, 1)
    return g


class TestLinkLoads:
    def test_local_assignment_no_traffic(self):
        g = chain_graph()
        report = link_loads(g, LinearArray(3), {"a": 0, "b": 0, "c": 0})
        assert report.total_traffic == 0
        assert report.num_remote_edges == 0
        assert report.max_load == 0

    def test_spread_assignment(self):
        g = chain_graph()
        arch = LinearArray(3)
        report = link_loads(g, arch, {"a": 0, "b": 1, "c": 2})
        # a->b: 2 over link (0,1); b->c: 3 over (1,2); c->a: 1 over both
        assert report.loads[(0, 1)] == 3
        assert report.loads[(1, 2)] == 4
        assert report.max_load == 4
        assert report.total_traffic == 2 + 3 + 2
        assert report.num_remote_edges == 3

    def test_hotspots_sorted(self):
        g = chain_graph()
        report = link_loads(g, LinearArray(3), {"a": 0, "b": 1, "c": 2})
        hot = report.hotspots(1)
        assert hot == [((1, 2), 4)]


class TestContentionModels:
    def test_price_laws(self):
        for model in (
            NoContention(),
            SerializedContention(weight=2),
            ScaledContention(weight=3),
        ):
            # zero load charges the base price exactly
            assert model.price(10, 0) == 10
            # free transfers stay free whatever the load
            assert model.price(0, 7) == 0
            # monotone in load
            prev = model.price(10, 0)
            for load in range(1, 6):
                cur = model.price(10, load)
                assert cur >= prev
                prev = cur

    def test_serialized_is_linear_in_load(self):
        model = SerializedContention(weight=3)
        assert model.price(5, 4) == 5 + 3 * 4

    def test_negative_inputs_rejected(self):
        with pytest.raises(ArchitectureError):
            SerializedContention().price(-1, 0)
        with pytest.raises(ArchitectureError):
            SerializedContention().price(1, -2)

    def test_factory(self):
        assert isinstance(make_contention_model("none"), NoContention)
        model = make_contention_model("serialized", weight=4)
        assert isinstance(model, SerializedContention)
        assert model.weight == 4
        with pytest.raises(ArchitectureError):
            make_contention_model("bogus")
        with pytest.raises(ArchitectureError):
            make_contention_model("serialized", weight=0)


class TestLinkOccupancy:
    def test_add_remove_roundtrip(self):
        occ = LinkOccupancy(LinearArray(4))
        occ.add(0, 3, 5)  # reserves (0,1) (1,2) (2,3)
        assert occ.load_on(0, 1) == 5
        assert occ.load_on(2, 3) == 5
        assert occ.load_between(0, 2) == 5
        assert occ.max_load == 5
        occ.remove(0, 3, 5)
        assert occ.loads == {}

    def test_over_release_rejected(self):
        occ = LinkOccupancy(LinearArray(3))
        occ.add(0, 1, 2)
        with pytest.raises(ArchitectureError):
            occ.remove(0, 1, 3)

    def test_same_pe_is_free(self):
        occ = LinkOccupancy(LinearArray(3))
        occ.add(1, 1, 9)
        assert occ.loads == {}
        assert occ.load_between(1, 1) == 0

    def test_from_assignment_skips_unplaced(self):
        g = chain_graph()
        occ = LinkOccupancy.from_assignment(
            g, LinearArray(3), {"a": 0, "b": 1}
        )
        # only a->b contributes: c is unplaced
        assert occ.loads == {(0, 1): 2}

    def test_load_between_is_max_over_route(self):
        occ = LinkOccupancy(LinearArray(4))
        occ.add(0, 1, 2)
        occ.add(2, 3, 7)
        assert occ.load_between(0, 3) == 7


class TestContendedCost:
    def test_disjoint_paths_unaffected(self):
        g = CSDFG("d")
        g.add_nodes("abcd")
        g.add_edge("a", "b", 0, 2)
        g.add_edge("c", "d", 0, 3)
        arch = Ring(6)
        # a->b on links (0,1); c->d on (3,4): no sharing
        report = contended_cost(
            g, arch, {"a": 0, "b": 1, "c": 3, "d": 4},
            SerializedContention(weight=5),
        )
        assert report.contended_cost == report.base_cost
        assert report.congestion_penalty == 0

    def test_shared_link_serialises(self):
        g = CSDFG("s")
        g.add_nodes("abcd")
        g.add_edge("a", "b", 0, 2)
        g.add_edge("c", "d", 0, 3)
        arch = LinearArray(4)
        # both transfers cross link (1,2)
        report = contended_cost(
            g, arch, {"a": 1, "b": 2, "c": 1, "d": 2},
            SerializedContention(weight=1),
        )
        # each edge pays the other's volume on the shared link
        assert report.congestion_penalty == 2 + 3
        assert report.max_link_load == 5

    def test_self_exclusive_metric_is_order_independent(self):
        g1 = CSDFG("o1")
        g1.add_nodes("abcd")
        g1.add_edge("a", "b", 0, 2)
        g1.add_edge("c", "d", 0, 3)
        g2 = CSDFG("o2")
        g2.add_nodes("abcd")
        g2.add_edge("c", "d", 0, 3)
        g2.add_edge("a", "b", 0, 2)
        arch = LinearArray(3)
        assignment = {"a": 0, "b": 2, "c": 0, "d": 2}
        model = SerializedContention(weight=2)
        r1 = contended_cost(g1, arch, assignment, model)
        r2 = contended_cost(g2, arch, assignment, model)
        assert r1.contended_cost == r2.contended_cost

    def test_no_contention_model_reproduces_base(self):
        g = chain_graph()
        report = contended_cost(
            g, LinearArray(3), {"a": 0, "b": 1, "c": 2}, NoContention()
        )
        assert report.contended_cost == report.base_cost


class TestContendedCache:
    def build(self, weight=1, occupy=()):
        arch = LinearArray(4)
        occ = LinkOccupancy(arch)
        for src, dst, vol in occupy:
            occ.add(src, dst, vol)
        cache = CommCostCache(
            arch,
            [1, 2],
            contention=SerializedContention(weight=weight),
            occupancy=occ,
        )
        return arch, cache

    def test_default_cache_is_contention_free(self):
        arch = LinearArray(4)
        cache = CommCostCache(arch, [1, 2])
        assert not cache.contended
        for src in range(4):
            for dst in range(4):
                for vol in (1, 2):
                    assert cache.cost(src, dst, vol) == arch.comm_cost(
                        src, dst, vol
                    )

    def test_empty_occupancy_prices_like_base(self):
        arch, cache = self.build(weight=9)
        for src in range(4):
            for dst in range(4):
                assert cache.cost(src, dst, 2) == arch.comm_cost(src, dst, 2)

    def test_surcharge_applied_on_loaded_route(self):
        arch, cache = self.build(weight=2, occupy=[(1, 2, 5)])
        base = arch.comm_cost(0, 3, 2)
        # route 0->3 crosses the loaded (1,2) link: base + weight*load
        assert cache.cost(0, 3, 2) == base + 2 * 5
        # local transfers stay free
        assert cache.cost(2, 2, 2) == 0

    def test_row_views_agree_with_cost(self):
        arch, cache = self.build(weight=3, occupy=[(0, 1, 4), (2, 3, 1)])
        for vol in (1, 2):
            for src in range(4):
                row = cache.row_from(src, vol)
                for dst in range(4):
                    assert row[dst] == cache.cost(src, dst, vol)
            for dst in range(4):
                col = cache.row_to(dst, vol)
                for src in range(4):
                    assert col[src] == cache.cost(src, dst, vol)

    def test_fallback_misses_are_surcharged_too(self):
        arch, cache = self.build(weight=2, occupy=[(1, 2, 5)])
        base = arch.comm_cost(0, 3, 7)  # volume 7 is not tabulated
        assert cache.cost(0, 3, 7) == base + 2 * 5
        assert cache.misses == 1

    def test_foreign_occupancy_rejected(self):
        arch = LinearArray(4)
        other = LinkOccupancy(LinearArray(4))
        with pytest.raises(ArchitectureError):
            CommCostCache(
                arch, [1], contention=SerializedContention(), occupancy=other
            )

    def test_warm_hit_rate_with_occupancy_enabled(self):
        arch, cache = self.build(weight=1, occupy=[(0, 3, 2)])
        # warm the bands once, then hammer lookups: row builds count as
        # neither hit nor miss, so the warm rate must stay >= 99%
        for _ in range(50):
            for src in range(4):
                for dst in range(4):
                    cache.cost(src, dst, 1)
        assert cache.hit_rate >= 0.99
