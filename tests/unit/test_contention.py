"""Unit tests for the link-contention analysis extension."""

from repro.arch import LinearArray, link_loads
from repro.graph import CSDFG


def chain_graph():
    g = CSDFG("c")
    g.add_nodes("abc")
    g.add_edge("a", "b", 0, 2)
    g.add_edge("b", "c", 0, 3)
    g.add_edge("c", "a", 1, 1)
    return g


class TestLinkLoads:
    def test_local_assignment_no_traffic(self):
        g = chain_graph()
        report = link_loads(g, LinearArray(3), {"a": 0, "b": 0, "c": 0})
        assert report.total_traffic == 0
        assert report.num_remote_edges == 0
        assert report.max_load == 0

    def test_spread_assignment(self):
        g = chain_graph()
        arch = LinearArray(3)
        report = link_loads(g, arch, {"a": 0, "b": 1, "c": 2})
        # a->b: 2 over link (0,1); b->c: 3 over (1,2); c->a: 1 over both
        assert report.loads[(0, 1)] == 3
        assert report.loads[(1, 2)] == 4
        assert report.max_load == 4
        assert report.total_traffic == 2 + 3 + 2
        assert report.num_remote_edges == 3

    def test_hotspots_sorted(self):
        g = chain_graph()
        report = link_loads(g, LinearArray(3), {"a": 0, "b": 1, "c": 2})
        hot = report.hotspots(1)
        assert hot == [((1, 2), 4)]
