"""Unit tests for random/parametric CSDFG generators."""

from fractions import Fraction

import pytest

from repro.errors import GraphError
from repro.graph import (
    chain_csdfg,
    fork_join_csdfg,
    is_legal,
    iteration_bound,
    layered_csdfg,
    random_csdfg,
    random_dag,
    ring_csdfg,
    validate_csdfg,
)


class TestRandomCsdfg:
    def test_legal_by_construction(self):
        for seed in range(10):
            assert is_legal(random_csdfg(12, seed=seed))

    def test_deterministic(self):
        a = random_csdfg(10, seed=7)
        b = random_csdfg(10, seed=7)
        assert a.structurally_equal(b)

    def test_seed_changes_graph(self):
        a = random_csdfg(10, seed=1, edge_prob=0.5)
        b = random_csdfg(10, seed=2, edge_prob=0.5)
        assert not a.structurally_equal(b)

    def test_node_count(self):
        assert random_csdfg(17, seed=0).num_nodes == 17

    def test_attribute_ranges(self):
        g = random_csdfg(15, seed=3, max_time=2, max_delay=4, max_volume=5)
        assert all(1 <= g.time(v) <= 2 for v in g.nodes())
        assert all(0 <= e.delay <= 4 for e in g.edges())
        assert all(1 <= e.volume <= 5 for e in g.edges())

    def test_rejects_empty(self):
        with pytest.raises(GraphError):
            random_csdfg(0)


class TestRandomDag:
    def test_no_delays(self):
        g = random_dag(12, seed=4)
        assert all(e.delay == 0 for e in g.edges())
        assert is_legal(g)


class TestLayered:
    def test_structure(self):
        g = layered_csdfg((2, 3, 2), seed=0, feedback_edges=1)
        assert g.num_nodes == 7
        validate_csdfg(g, require_weakly_connected=True)

    def test_every_nonroot_layer_connected(self):
        g = layered_csdfg((1, 4, 4), seed=5)
        for node in g.nodes():
            if not str(node).startswith("L0"):
                assert g.in_degree(node) >= 1

    def test_rejects_bad_sizes(self):
        with pytest.raises(GraphError):
            layered_csdfg(())
        with pytest.raises(GraphError):
            layered_csdfg((2, 0))


class TestParametricShapes:
    def test_chain_bound(self):
        g = chain_csdfg(4, time=3, loop_delay=2)
        assert iteration_bound(g) == Fraction(12, 2)

    def test_chain_single_node(self):
        g = chain_csdfg(1, loop_delay=1)
        assert g.has_edge("n0", "n0")
        assert is_legal(g)

    def test_ring_shape(self):
        g = ring_csdfg(5)
        assert g.num_edges == 5
        assert is_legal(g)

    def test_ring_needs_two(self):
        with pytest.raises(GraphError):
            ring_csdfg(1)

    def test_fork_join(self):
        g = fork_join_csdfg(3, stages=2)
        assert g.num_nodes == 2 + 3 * 2
        validate_csdfg(g, require_weakly_connected=True)

    def test_fork_join_rejects_zero_width(self):
        with pytest.raises(GraphError):
            fork_join_csdfg(0)
