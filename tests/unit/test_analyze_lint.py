"""Unit tests for the codebase lint head (RL1xx).

Two obligations: the shipped tree lints clean (the zero-error
baseline), and each rule actually fires — including the seeded
mutation test, which plants a wall-clock read in a copy of
``repro/core/cyclo.py`` and demands the CLI reject it with RL102.
"""

import shutil
from pathlib import Path

import pytest

import repro
from repro.analyze import infer_module, lint_paths, lint_source
from repro.cli import main
from repro.errors import AnalysisError

PACKAGE_DIR = Path(repro.__file__).parent


def codes(found):
    return sorted(d.code for d in found)


class TestModuleInference:
    def test_anchors_at_repro(self):
        assert infer_module("src/repro/core/cyclo.py") == "repro.core.cyclo"
        assert infer_module("/tmp/x9/repro/graph/io.py") == "repro.graph.io"

    def test_package_init(self):
        assert infer_module("src/repro/qa/__init__.py") == "repro.qa"

    def test_outside_any_repro_tree(self):
        assert infer_module("/opt/scripts/tool.py") == "tool"


class TestRulesFire:
    def test_rl101_global_random(self):
        found, _ = lint_source(
            "import random\nx = random.randint(0, 9)\n",
            module="repro.core.rotate",
        )
        assert codes(found) == ["RL101"]

    def test_rl101_numpy_chain(self):
        found, _ = lint_source(
            "import numpy as np\nx = np.random.rand(3)\n",
            module="repro.sim.engine",
        )
        assert codes(found) == ["RL101"]

    def test_rl101_unseeded_random_instance(self):
        found, _ = lint_source(
            "import random\nrng = random.Random()\n",
            module="repro.core.rotate",
        )
        assert codes(found) == ["RL101"]

    def test_rl101_seeded_instance_is_fine(self):
        found, _ = lint_source(
            "import random\nrng = random.Random(7)\n",
            module="repro.core.rotate",
        )
        assert found == []

    def test_rl101_allowlisted_in_qa(self):
        found, _ = lint_source(
            "import random\nx = random.random()\n",
            module="repro.qa.generate",
        )
        assert found == []

    @pytest.mark.parametrize("call", [
        "time.time()", "time.perf_counter()", "time.monotonic()",
        "datetime.now()",
    ])
    def test_rl102_wall_clock_in_core(self, call):
        found, _ = lint_source(
            f"import time, datetime\nt = {call}\n",
            module="repro.core.cyclo",
        )
        assert codes(found) == ["RL102"]

    @pytest.mark.parametrize(
        "module", ["repro.obs.spans", "repro.perf.bench", "repro.qa.fuzz"]
    )
    def test_rl102_allowlisted_modules(self, module):
        found, _ = lint_source(
            "import time\nt = time.perf_counter()\n", module=module
        )
        assert found == []

    def test_rl103_hand_composed_hop_cost(self):
        found, _ = lint_source(
            "m = model.cost(arch.hops(p, q), volume)\n",
            module="repro.core.psl",
        )
        assert codes(found) == ["RL103"]

    def test_rl103_direct_comm_model_access(self):
        found, _ = lint_source(
            "m = arch.comm_model.cost(3, volume)\n",
            module="repro.schedule.validate",
        )
        assert codes(found) == ["RL103"]

    def test_rl103_allowlisted_in_arch(self):
        found, _ = lint_source(
            "m = self.comm_model.cost(hops, volume)\n",
            module="repro.arch.topology",
        )
        assert found == []

    def test_rl103_comm_cost_wrapper_is_fine(self):
        found, _ = lint_source(
            "m = arch.comm_cost(p, q, volume)\n",
            module="repro.core.psl",
        )
        assert found == []

    def test_rl104_bare_except_fires_anywhere(self):
        src = "try:\n    x()\nexcept:\n    pass\n"
        found, _ = lint_source(src, module="repro.analysis.report")
        assert codes(found) == ["RL104"]

    def test_rl105_broad_except_in_core(self):
        src = "try:\n    x()\nexcept Exception:\n    pass\n"
        found, _ = lint_source(src, module="repro.graph.csdfg")
        assert codes(found) == ["RL105"]
        found, _ = lint_source(src, module="repro.cli")
        assert found == []

    def test_rl106_builtin_raise_in_core(self):
        found, _ = lint_source(
            "raise ValueError('bad')\n", module="repro.retiming.basic"
        )
        assert codes(found) == ["RL106"]

    def test_rl106_typed_and_reraise_are_fine(self):
        src = (
            "from repro.errors import GraphError\n"
            "def f():\n"
            "    try:\n"
            "        raise GraphError('x')\n"
            "    except GraphError:\n"
            "        raise\n"
            "    raise NotImplementedError\n"
        )
        found, _ = lint_source(src, module="repro.graph.csdfg")
        assert found == []

    @pytest.mark.parametrize("module", [
        "repro.core.cyclo", "repro.perf.bench", "repro.obs.runtime",
    ])
    def test_rl107_print_in_instrumented_code(self, module):
        found, _ = lint_source("print('debug')\n", module=module)
        assert codes(found) == ["RL107"]

    @pytest.mark.parametrize("module", [
        "repro.cli", "repro.obs.export", "repro.qa.fuzz",
    ])
    def test_rl107_cli_and_exporters_may_print(self, module):
        found, _ = lint_source("print('output')\n", module=module)
        assert found == []

    def test_rl107_suppressible(self):
        found, suppressed = lint_source(
            "print('x')  # repro-lint: disable=RL107\n",
            module="repro.perf.bench",
        )
        assert found == [] and suppressed == 1

    def test_rl108_for_loop_over_graph_walk(self):
        src = "for v in graph.nodes():\n    use(v)\n"
        found, _ = lint_source(src, module="repro.core.kernels")
        assert codes(found) == ["RL108"]

    def test_rl108_comprehension_over_graph_walk(self):
        src = "vols = [e.volume for e in g.edges()]\n"
        found, _ = lint_source(src, module="repro.core.kernels")
        assert codes(found) == ["RL108"]
        src = "vols = {e.volume for e in g.in_edges(v)}\n"
        found, _ = lint_source(src, module="repro.core.kernels")
        assert codes(found) == ["RL108"]

    def test_rl108_only_in_batched_kernel_modules(self):
        # the per-node gather is exactly what callers are *supposed*
        # to do — remapping, psl, qa and everything else stay free
        src = "for v in graph.nodes():\n    use(v)\n"
        for module in ("repro.core.remapping", "repro.core.psl",
                       "repro.qa.generate"):
            found, _ = lint_source(src, module=module)
            assert found == [], module

    def test_rl108_plain_sequence_loops_are_fine(self):
        src = "for x in rows:\n    use(x)\nout = [r[p] for p in pes]\n"
        found, _ = lint_source(src, module="repro.core.kernels")
        assert found == []

    def test_rl108_suppressible(self):
        found, suppressed = lint_source(
            "for v in g.nodes():  # repro-lint: disable=RL108\n"
            "    use(v)\n",
            module="repro.core.kernels",
        )
        assert found == [] and suppressed == 1

    def test_rl108_real_kernels_module_is_clean(self):
        kernels = PACKAGE_DIR / "core" / "kernels.py"
        found, _ = lint_source(
            kernels.read_text(), module="repro.core.kernels"
        )
        assert [d for d in found if d.code == "RL108"] == []

    def test_syntax_error_is_analysis_error(self):
        with pytest.raises(AnalysisError, match="cannot parse"):
            lint_source("def f(:\n", module="repro.core.x")


class TestSuppression:
    SRC = "import time\nt = time.time()  # repro-lint: disable={}\n"

    def test_matching_code_suppresses(self):
        found, suppressed = lint_source(
            self.SRC.format("RL102"), module="repro.core.cyclo"
        )
        assert found == [] and suppressed == 1

    def test_all_suppresses(self):
        found, suppressed = lint_source(
            self.SRC.format("all"), module="repro.core.cyclo"
        )
        assert found == [] and suppressed == 1

    def test_comma_separated_codes(self):
        found, suppressed = lint_source(
            self.SRC.format("RL101, RL102"), module="repro.core.cyclo"
        )
        # RL102 is silenced; the RL101 token silenced nothing, which
        # the suppression checker reports as a warning (RL109)
        assert codes(found) == ["RL109"] and suppressed == 1

    def test_wrong_code_does_not_suppress(self):
        found, suppressed = lint_source(
            self.SRC.format("RL103"), module="repro.core.cyclo"
        )
        assert codes(found) == ["RL102", "RL109"] and suppressed == 0

    def test_other_lines_are_unaffected(self):
        src = (
            "import time\n"
            "a = time.time()  # repro-lint: disable=RL102\n"
            "b = time.time()\n"
        )
        found, suppressed = lint_source(src, module="repro.core.cyclo")
        assert codes(found) == ["RL102"] and suppressed == 1
        assert found[0].line == 3


class TestShippedTree:
    def test_zero_error_baseline(self):
        report = lint_paths([PACKAGE_DIR])
        assert report.errors == [], report.describe()

    def test_baseline_has_documented_suppressions(self):
        # the deliberate sites (deadline budget in cyclo, the qa
        # design-criterion oracle, the analyzer's own re-derivation)
        report = lint_paths([PACKAGE_DIR])
        assert report.suppressed >= 4

    def test_cli_lint_exits_zero(self, capsys):
        assert main(["lint"]) == 0
        assert "0 error(s)" in capsys.readouterr().out


class TestMutationSeeding:
    """The acceptance gate: inject ``time.time()`` into a copy of
    ``repro/core/cyclo.py`` and the lint must reject it with RL102."""

    def plant(self, tmp_path: Path) -> Path:
        victim = tmp_path / "repro" / "core" / "cyclo.py"
        victim.parent.mkdir(parents=True)
        shutil.copy(PACKAGE_DIR / "core" / "cyclo.py", victim)
        text = victim.read_text()
        marker = "stop_reason = \"completed\""
        assert marker in text
        victim.write_text(text.replace(
            marker, marker + "\n    _t0 = time.time()", 1
        ))
        return victim

    def test_mutated_core_fails_with_rl102(self, tmp_path, capsys):
        victim = self.plant(tmp_path)
        assert main(["lint", str(victim)]) == 1
        out = capsys.readouterr().out
        assert "RL102" in out and "time.time" in out

    def test_pristine_copy_still_passes(self, tmp_path, capsys):
        victim = tmp_path / "repro" / "core" / "cyclo.py"
        victim.parent.mkdir(parents=True)
        shutil.copy(PACKAGE_DIR / "core" / "cyclo.py", victim)
        assert main(["lint", str(victim)]) == 0
