"""Tests for the shared suppression grammar (``repro.analyze.suppress``).

The grammar is one currency spent by two heads: the lint head owns
RL-prefixed codes, the flow head owns RD/RC.  These tests pin down the
semantics the docs promise — multiple codes on one line, file-level
vs inline scope, and the RL109 useless-suppression warning for codes
that are unknown or silence nothing.
"""

import pytest

from repro.analyze import (
    Diagnostic,
    apply_suppressions,
    parse_suppressions,
)
from repro.analyze.suppress import Suppressions


def diag(code, line, severity="error"):
    return Diagnostic(
        code=code, severity=severity, message=f"planted {code}",
        file="x.py", line=line,
    )


def codes(found):
    return sorted(d.code for d in found)


class TestParsing:
    def test_inline_single(self):
        sup = parse_suppressions("x = 1  # repro-lint: disable=RL101\n")
        assert sup.line == {1: {"RL101"}}
        assert sup.file == set()

    def test_inline_multiple_codes(self):
        sup = parse_suppressions(
            "x = 1  # repro-lint: disable=RL101, RD102,RC203\n"
        )
        assert sup.line == {1: {"RL101", "RD102", "RC203"}}

    def test_file_level(self):
        sup = parse_suppressions(
            "# repro-lint: disable-file=RL107\nprint('x')\n"
        )
        assert sup.file == {"RL107"}
        assert sup.line == {}

    def test_codes_are_case_normalized(self):
        sup = parse_suppressions("x = 1  # repro-lint: disable=rl101\n")
        assert sup.line == {1: {"RL101"}}

    def test_docstring_grammar_examples_are_not_suppressions(self):
        # only real COMMENT tokens count: the grammar's own
        # documentation must not silence anything
        sup = parse_suppressions(
            '"""Use ``# repro-lint: disable=CODE`` to silence."""\n'
            "x = 1\n"
        )
        assert sup.line == {} and sup.file == set()

    def test_broken_source_falls_back_to_raw_lines(self):
        # un-tokenizable input (the analyzers reject it later) still
        # yields a best-effort parse rather than an exception
        sup = parse_suppressions(
            "def f(:\n    x  # repro-lint: disable=RL101\n"
        )
        assert sup.line == {2: {"RL101"}}


class TestApplication:
    def test_inline_scope_is_one_line(self):
        src = "a = 1  # repro-lint: disable=RL101\nb = 2\n"
        kept, n = apply_suppressions(
            [diag("RL101", 1), diag("RL101", 2)], src,
            path="x.py", owned_prefixes=("RL",),
        )
        assert codes(kept) == ["RL101"] and kept[0].line == 2
        assert n == 1

    def test_file_level_scope_is_whole_file(self):
        src = "# repro-lint: disable-file=RL101\na = 1\nb = 2\n"
        kept, n = apply_suppressions(
            [diag("RL101", 2), diag("RL101", 3)], src,
            path="x.py", owned_prefixes=("RL",),
        )
        assert kept == [] and n == 2

    def test_multiple_codes_one_line(self):
        src = "a = 1  # repro-lint: disable=RL101,RL102\n"
        kept, n = apply_suppressions(
            [diag("RL101", 1), diag("RL102", 1)], src,
            path="x.py", owned_prefixes=("RL",),
        )
        assert kept == [] and n == 2

    def test_all_silences_everything_on_the_line(self):
        src = "a = 1  # repro-lint: disable=all\n"
        kept, n = apply_suppressions(
            [diag("RL101", 1), diag("RL105", 1)], src,
            path="x.py", owned_prefixes=("RL",),
        )
        assert kept == [] and n == 2

    def test_all_is_never_judged_useless(self):
        src = "a = 1  # repro-lint: disable=all\n"
        kept, n = apply_suppressions(
            [], src, path="x.py", owned_prefixes=("RL",),
        )
        assert kept == [] and n == 0


class TestUselessSuppression:
    def test_unknown_code_warns(self):
        src = "a = 1  # repro-lint: disable=RL999\n"
        kept, _ = apply_suppressions(
            [], src, path="x.py", owned_prefixes=("RL",),
        )
        assert codes(kept) == ["RL109"]
        assert kept[0].severity == "warning"
        assert "RL999" in kept[0].message

    def test_unused_known_code_warns(self):
        src = "a = 1  # repro-lint: disable=RL101\n"
        kept, _ = apply_suppressions(
            [], src, path="x.py", owned_prefixes=("RL",),
        )
        assert codes(kept) == ["RL109"]

    def test_unused_file_level_warns(self):
        src = "# repro-lint: disable-file=RL101\na = 1\n"
        kept, _ = apply_suppressions(
            [], src, path="x.py", owned_prefixes=("RL",),
        )
        assert codes(kept) == ["RL109"]
        assert "anywhere in this file" in kept[0].message

    def test_used_code_does_not_warn(self):
        src = "a = 1  # repro-lint: disable=RL101\n"
        kept, n = apply_suppressions(
            [diag("RL101", 1)], src,
            path="x.py", owned_prefixes=("RL",),
        )
        assert kept == [] and n == 1


class TestCrossHeadOwnership:
    """Each head only judges its own prefixes: an RC token in a file
    seen by the lint head is the flow head's business, and vice versa
    — no false RL109 from the head that cannot use it."""

    def test_lint_head_ignores_flow_tokens(self):
        src = "a = 1  # repro-lint: disable=RC203\n"
        kept, n = apply_suppressions(
            [], src, path="x.py", owned_prefixes=("RL",),
        )
        assert kept == [] and n == 0

    def test_flow_head_ignores_lint_tokens(self):
        src = "a = 1  # repro-lint: disable=RL102\n"
        kept, n = apply_suppressions(
            [], src, path="x.py", owned_prefixes=("RD", "RC"),
        )
        assert kept == [] and n == 0

    def test_lint_head_is_catchall_for_garbage(self):
        # a token matching no head at all is a typo; the lint head
        # (the catch-all) reports it so it is flagged exactly once
        src = "a = 1  # repro-lint: disable=XQ999\n"
        kept, _ = apply_suppressions(
            [], src, path="x.py", owned_prefixes=("RL",),
        )
        assert codes(kept) == ["RL109"]
        flow_kept, _ = apply_suppressions(
            [], src, path="x.py", owned_prefixes=("RD", "RC"),
        )
        assert flow_kept == []

    def test_mixed_tokens_each_head_spends_its_own(self):
        src = "a = 1  # repro-lint: disable=RL101,RC203\n"
        kept, n = apply_suppressions(
            [diag("RL101", 1)], src, path="x.py",
            owned_prefixes=("RL",),
        )
        assert kept == [] and n == 1
        kept, n = apply_suppressions(
            [diag("RC203", 1)], src, path="x.py",
            owned_prefixes=("RD", "RC"),
        )
        assert kept == [] and n == 1


class TestUnownedDiagnosticsPassThrough:
    def test_suppression_only_spends_on_matching_codes(self):
        # a diagnostic whose code is not on the line passes through
        src = "a = 1  # repro-lint: disable=RL101\n"
        kept, n = apply_suppressions(
            [diag("RL105", 1)], src, path="x.py",
            owned_prefixes=("RL",),
        )
        assert codes(kept) == ["RL105", "RL109"] and n == 0

    def test_empty_source_is_passthrough(self):
        kept, n = apply_suppressions(
            [diag("RL101", 1)], "", path="x.py", owned_prefixes=("RL",),
        )
        assert codes(kept) == ["RL101"] and n == 0

    def test_suppressions_dataclass_defaults(self):
        sup = Suppressions()
        assert sup.line == {} and sup.file == set() and sup.tokens == []
