"""Tests for the dynamic determinism sanitizer (``repro sanitize``).

Three layers: the canonicalization scrubbers (pure functions), the
double-run protocol on the real CLI (byte-identical on the shipped
tree — the acceptance baseline), and the mutation cross-check: inject
hash-seed-dependent jitter into a copy of ``core/priority.py`` and
demand that *both* heads convict it — the static flow analyzer with
RD103 and the sanitizer with a non-empty diff.
"""

import shutil
import sys
from pathlib import Path

import pytest

import repro
from repro.analyze import analyze_flow
from repro.analyze.sanitize import (
    RunOutcome,
    canonicalize_output,
    sanitize_command,
    schedule_fingerprint,
    _with_jobs,
)
from repro.arch import make_architecture
from repro.core import cyclo_compact
from repro.errors import AnalysisError
from repro.workloads import make_workload

PACKAGE_DIR = Path(repro.__file__).parent


class TestCanonicalize:
    @pytest.mark.parametrize("raw", [
        "compacted in 0.31s",
        "compacted in 12.5 ms",
        "compacted in 3 seconds",
    ])
    def test_durations_are_scrubbed(self, raw):
        assert "<DURATION>" in canonicalize_output(raw)

    def test_rates_are_scrubbed(self):
        out = canonicalize_output("throughput 8_123.4 nodes/s")
        assert "<RATE>" in out and "8_123" not in out

    def test_written_paths_are_scrubbed(self):
        a = canonicalize_output("report written to /out/run-a.json")
        b = canonicalize_output("report written to /out/run-b.json")
        assert a == b and "<PATH>" in a

    def test_tmp_paths_are_scrubbed(self):
        out = canonicalize_output("spilled to /tmp/repro-x8f2/hist")
        assert "/tmp/" not in out and "<TMP>" in out

    def test_jobs_echo_is_scrubbed(self):
        a = canonicalize_output("fuzz: 40 trials, jobs=1")
        b = canonicalize_output("fuzz: 40 trials, jobs=2")
        assert a == b

    def test_schedule_payload_survives(self):
        line = "1  | F   B   .   A   (length 3, comm cost 12)"
        assert canonicalize_output(line) == line


class TestWithJobs:
    def test_rewrites_separated_flag(self):
        args, jobs = _with_jobs(("fuzz", "--jobs", "4", "--seed", "1"), 2)
        assert args == ("fuzz", "--jobs", "2", "--seed", "1")
        assert jobs == 2

    def test_rewrites_equals_flag(self):
        args, jobs = _with_jobs(("fuzz", "--jobs=4"), 1)
        assert args == ("fuzz", "--jobs=1") and jobs == 1

    def test_never_injects(self):
        args, jobs = _with_jobs(("schedule", "figure1"), 2)
        assert args == ("schedule", "figure1") and jobs is None


class TestRunOutcome:
    def test_canonical_embeds_exit_and_streams(self):
        run = RunOutcome(
            argv=("python", "-m", "repro", "x"), hashseed=101,
            jobs=None, returncode=2, stdout="done in 0.5s\n",
            stderr="warn\n",
        )
        assert run.canonical.startswith("exit=2\n")
        assert "<DURATION>" in run.canonical
        assert "--- stderr ---" in run.canonical


class TestScheduleFingerprint:
    def test_stable_across_runs(self, figure1, mesh2x2):
        a = cyclo_compact(figure1, mesh2x2)
        b = cyclo_compact(figure1, mesh2x2)
        assert schedule_fingerprint(a.schedule) == \
            schedule_fingerprint(b.schedule)

    def test_encodes_every_placement(self, figure1, mesh2x2):
        fp = schedule_fingerprint(cyclo_compact(figure1, mesh2x2).schedule)
        assert fp.startswith("L")
        assert fp.count(";") == figure1.num_nodes - 1

    def test_distinguishes_different_schedules(self):
        graph = make_workload("fir8")
        narrow = make_architecture("linear", 2)
        wide = make_architecture("mesh", 4)
        assert schedule_fingerprint(cyclo_compact(graph, narrow).schedule) \
            != schedule_fingerprint(cyclo_compact(graph, wide).schedule)


class TestSanitizeProtocol:
    def test_empty_target_is_analysis_error(self):
        with pytest.raises(AnalysisError, match="needs a target"):
            sanitize_command([])

    def test_unlaunchable_python_is_analysis_error(self):
        with pytest.raises(AnalysisError, match="cannot launch"):
            sanitize_command(
                ["schedule", "figure1"], python="/no/such/python"
            )

    def test_shipped_schedule_is_byte_identical(self, monkeypatch):
        monkeypatch.setenv("PYTHONPATH", str(PACKAGE_DIR.parent))
        report = sanitize_command(
            ["schedule", "figure1", "--arch", "mesh", "--pes", "4"],
            timeout=60.0,
        )
        assert report.ok, "\n".join(report.diff)
        assert report.exit_code() == 0
        assert "byte-identical" in report.describe()
        a, b = report.runs
        assert (a.hashseed, b.hashseed) == (101, 202)
        assert a.jobs is None and b.jobs is None  # no --jobs to rewrite

    def test_report_serializes(self, monkeypatch):
        monkeypatch.setenv("PYTHONPATH", str(PACKAGE_DIR.parent))
        report = sanitize_command(
            ["schedule", "figure1", "--arch", "mesh", "--pes", "4"],
            timeout=60.0,
        )
        import json

        payload = json.loads(report.to_json())
        assert payload["format"] == "repro-sanitize"
        assert payload["ok"] is True
        assert len(payload["runs"]) == 2


def mutate_priority(site: Path) -> Path:
    """Copy the shipped package under ``site`` and salt the paper
    priority function with a ``PYTHONHASHSEED``-dependent term."""
    pkg = site / "repro"
    shutil.copytree(PACKAGE_DIR, pkg)
    victim = pkg / "core" / "priority.py"
    text = victim.read_text()
    marker = "    mb = mobility(alap, node, cs_cur)\n"
    assert marker in text
    text = text.replace(marker, marker + (
        "    import os\n"
        "    import zlib\n"
        "    mb -= zlib.crc32(\n"
        "        f\"{os.environ.get('PYTHONHASHSEED', '')}:\"\n"
        "        f\"{node}\".encode()\n"
        "    ) % 97\n"
    ), 1)
    victim.write_text(text)
    return pkg


class TestMutationCrossCheck:
    """The acceptance gate: one planted nondeterminism bug, convicted
    by both the static and the dynamic head."""

    def test_static_head_fires_rd103(self, tmp_path):
        pkg = mutate_priority(tmp_path)
        report = analyze_flow([pkg])
        hits = [d for d in report.diagnostics if d.code == "RD103"]
        assert hits, report.describe()
        assert any(d.file.endswith("priority.py") for d in hits)

    def test_dynamic_head_reports_a_diff(self, tmp_path, monkeypatch):
        mutate_priority(tmp_path)
        monkeypatch.setenv("PYTHONPATH", str(tmp_path))
        report = sanitize_command(
            ["schedule", "fir8", "--arch", "mesh", "--pes", "4"],
            timeout=60.0,
        )
        assert not report.ok
        assert report.exit_code() == 1
        assert "DETERMINISM VIOLATION" in report.describe()

    def test_pristine_copy_stays_clean_both_ways(self, tmp_path,
                                                 monkeypatch):
        pkg = tmp_path / "repro"
        shutil.copytree(PACKAGE_DIR, pkg)
        report = analyze_flow([pkg])
        assert [d for d in report.diagnostics
                if d.severity == "error"] == []
        monkeypatch.setenv("PYTHONPATH", str(tmp_path))
        dyn = sanitize_command(
            ["schedule", "fir8", "--arch", "mesh", "--pes", "4"],
            timeout=60.0,
        )
        assert dyn.ok, "\n".join(dyn.diff)
