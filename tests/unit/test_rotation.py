"""Unit tests for the rotation phase."""

import pytest

from repro.core import rotate_schedule, start_up_schedule, undo_rotation
from repro.errors import IllegalRetimingError
from repro.graph import CSDFG
from repro.schedule import ScheduleTable


class TestRotateSchedule:
    def test_rotates_first_row(self, figure1, mesh2x2):
        s = start_up_schedule(figure1, mesh2x2)
        g = figure1.copy()
        rotated, old = rotate_schedule(g, s)
        assert rotated == ["A"]
        assert old[0].start == 1 and old[0].pe == 0

    def test_graph_retimed(self, figure1, mesh2x2):
        s = start_up_schedule(figure1, mesh2x2)
        g = figure1.copy()
        rotate_schedule(g, s)
        assert g.delay("D", "A") == 2
        assert g.delay("A", "B") == 1

    def test_table_shifted(self, figure1, mesh2x2):
        s = start_up_schedule(figure1, mesh2x2)
        g = figure1.copy()
        rotate_schedule(g, s)
        assert "A" not in s
        assert s.start("B") == 1
        assert s.start("C") == 2
        assert s.length == 6

    def test_multiple_first_row_nodes(self):
        g = CSDFG("two-roots")
        for n in "ab":
            g.add_node(n, 1)
            g.add_edge(n, n, 1, 1)
        s = ScheduleTable(2, length=1)
        s.place("a", 0, 1, 1)
        s.place("b", 1, 1, 1)
        rotated, _ = rotate_schedule(g, s)
        assert rotated == ["a", "b"]
        assert s.num_tasks == 0

    def test_internal_edges_do_not_block_rotation(self):
        # u -> v zero-delay with both nodes in row 1: the edge is
        # internal to the rotated set, so rotation is legal (the
        # schedule itself is illegal, but the primitive is exercised)
        g = CSDFG("pairrow")
        g.add_node("u", 1)
        g.add_node("v", 1)
        g.add_edge("u", "v", 0, 1)
        g.add_edge("v", "u", 1, 1)
        s = ScheduleTable(2)
        s.place("u", 0, 1, 1)
        s.place("v", 1, 1, 1)
        rotated, _ = rotate_schedule(g, s)
        assert set(rotated) == {"u", "v"}
        assert g.delay("u", "v") == 0  # internal edge untouched

    def test_illegal_first_row_raises_before_mutation(self):
        # a first-row node with a zero-delay producer *outside* the
        # rotated set (an artificially illegal schedule) must be caught
        # before any graph mutation
        g = CSDFG("bad")
        g.add_node("w", 1)
        g.add_node("v", 1)
        g.add_edge("w", "v", 0, 1)
        g.add_edge("v", "w", 1, 1)
        s = ScheduleTable(2)
        s.place("v", 0, 1, 1)  # v in row 1, its producer w is not
        s.place("w", 1, 2, 1)
        before = g.copy()
        with pytest.raises(IllegalRetimingError):
            rotate_schedule(g, s)
        assert g.structurally_equal(before)


class TestUndoRotation:
    def test_round_trip(self, figure1, mesh2x2):
        s = start_up_schedule(figure1, mesh2x2)
        snapshot = s.copy()
        g = figure1.copy()
        original_length = s.length
        rotated, old = rotate_schedule(g, s)
        undo_rotation(g, s, rotated, old, original_length)
        assert g.structurally_equal(figure1)
        assert s.same_placements(snapshot)

    def test_round_trip_after_trial_placements(self, figure1, mesh2x2):
        s = start_up_schedule(figure1, mesh2x2)
        snapshot = s.copy()
        g = figure1.copy()
        rotated, old = rotate_schedule(g, s)
        # trial remapping that then must be discarded
        s.place("A", 3, 2, 1)
        undo_rotation(g, s, rotated, old, snapshot.length)
        assert s.same_placements(snapshot)
        assert g.structurally_equal(figure1)
