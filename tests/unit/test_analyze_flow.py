"""Mutation-seeded tests for the interprocedural flow analyzer.

Each rule family gets (at least) one planted bug the analyzer must
catch and one clean variant it must stay silent on.  Fixtures are
planted under a temporary ``repro/`` tree so
:func:`repro.analyze.lint.infer_module` resolves them as real modules
— the same trick the lint mutation tests use, now exercising the
*interprocedural* machinery: the bug and the sink live in different
functions (and, for several cases, different files).
"""

from pathlib import Path

import pytest

from repro.analyze import analyze_flow
from repro.errors import AnalysisError


def plant(tmp_path: Path, files: dict[str, str]) -> Path:
    """Write ``files`` (relative to a fake ``repro`` package) and
    return the tree root to analyze."""
    root = tmp_path / "repro"
    for rel, source in files.items():
        target = root / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
    return root


def codes(report):
    return sorted(d.code for d in report.diagnostics)


def run(tmp_path, files):
    return analyze_flow([plant(tmp_path, files)])


class TestRD101UnseededRngInParallelFlow:
    def test_tainted_payload_through_helper(self, tmp_path):
        # the draw is two calls away from the dispatch site
        report = run(tmp_path, {"perf/driver.py": (
            "import random\n"
            "from repro.perf.parallel import run_parallel\n"
            "def jitter(item):\n"
            "    return random.random()\n"
            "def payload(item):\n"
            "    return jitter(item)\n"
            "def drive(items):\n"
            "    return run_parallel(payload, items, jobs=2)\n"
        )})
        assert "RD101" in codes(report)
        (diag,) = [d for d in report.diagnostics if d.code == "RD101"]
        assert diag.line == 8
        assert "payload" in diag.message

    def test_salted_hash_in_priority(self, tmp_path):
        report = run(tmp_path, {"perf/prio.py": (
            "from repro.core.startup import start_up_schedule\n"
            "def salted(graph, alap, finish, node, cs):\n"
            "    return hash(node)\n"
            "def schedule(graph, arch):\n"
            "    return start_up_schedule(graph, arch, priority=salted)\n"
        )})
        assert "RD101" in codes(report)
        (diag,) = [d for d in report.diagnostics if d.code == "RD101"]
        assert "priority" in diag.message and "hash()" in diag.message

    def test_tainted_class_instance_priority(self, tmp_path):
        # taint inside __call__ of a class passed as priority=Cls(...)
        report = run(tmp_path, {"perf/prio.py": (
            "import random\n"
            "from repro.core.startup import start_up_schedule\n"
            "class Jitter:\n"
            "    def __call__(self, graph, alap, finish, node, cs):\n"
            "        return random.uniform(0, 1)\n"
            "def schedule(graph, arch, seed):\n"
            "    pri = Jitter()\n"
            "    return start_up_schedule(graph, arch, priority=pri)\n"
        )})
        assert "RD101" in codes(report)

    def test_seeded_rng_is_clean(self, tmp_path):
        report = run(tmp_path, {"perf/driver.py": (
            "import random\n"
            "from repro.perf.parallel import run_parallel\n"
            "def payload(item):\n"
            "    rng = random.Random(item)\n"
            "    return rng.random()\n"
            "def drive(items):\n"
            "    return run_parallel(payload, items, jobs=2)\n"
        )})
        assert codes(report) == []


class TestRD102SetOrderAcrossMergeBoundary:
    def test_set_iteration_at_publish_boundary(self, tmp_path):
        report = run(tmp_path, {"perf/stats.py": (
            "def merge(snapshots, sink):\n"
            "    total = 0.0\n"
            "    for snap in set(snapshots):\n"
            "        total += snap\n"
            "    sink.publish_stats()\n"
            "    return total\n"
        )})
        assert "RD102" in codes(report)
        (diag,) = [d for d in report.diagnostics if d.code == "RD102"]
        assert diag.line == 3

    def test_set_returning_helper_iterated_in_payload(self, tmp_path):
        # interprocedural: the set is built in another function
        report = run(tmp_path, {"perf/driver.py": (
            "from repro.perf.parallel import run_parallel\n"
            "def distinct(items):\n"
            "    return {i for i in items}\n"
            "def payload(items):\n"
            "    return [x + 1 for x in distinct(items)]\n"
            "def drive(chunks):\n"
            "    return run_parallel(payload, chunks, jobs=2)\n"
        )})
        assert "RD102" in codes(report)

    def test_sorted_iteration_is_clean(self, tmp_path):
        report = run(tmp_path, {"perf/stats.py": (
            "def merge(snapshots, sink):\n"
            "    total = 0.0\n"
            "    for snap in sorted(set(snapshots)):\n"
            "        total += snap\n"
            "    sink.publish_stats()\n"
            "    return total\n"
        )})
        assert codes(report) == []

    def test_set_iteration_away_from_boundary_is_clean(self, tmp_path):
        # no merge boundary, no payload: plain set use is fine
        report = run(tmp_path, {"graph/util.py": (
            "def distinct(items):\n"
            "    out = []\n"
            "    for i in set(items):\n"
            "        out.append(i)\n"
            "    return out\n"
        )})
        assert "RD102" not in codes(report)


class TestRD103ClockIntoSchedule:
    def test_clock_derived_argument(self, tmp_path):
        report = run(tmp_path, {"perf/driver.py": (
            "import time\n"
            "from repro.core.cyclo import cyclo_compact\n"
            "def schedule(graph, arch, cfg):\n"
            "    stamp = time.monotonic()\n"
            "    return cyclo_compact(graph, arch, config=stamp)\n"
        )})
        assert "RD103" in codes(report)

    def test_env_read_reachable_from_entry_point(self, tmp_path):
        # the read hides one call below a core entry-point name
        report = run(tmp_path, {"core/mapper.py": (
            "import os\n"
            "def remap_nodes(graph, arch):\n"
            "    return _expand(graph)\n"
            "def _expand(graph):\n"
            "    knob = os.environ.get('REPRO_SECRET_KNOB')\n"
            "    return (graph, knob)\n"
        )})
        assert "RD103" in codes(report)
        (diag,) = [d for d in report.diagnostics if d.code == "RD103"]
        assert diag.line == 5

    def test_budget_keyword_is_exempt(self, tmp_path):
        # explicit deadlines are user intent, not leaked nondeterminism
        report = run(tmp_path, {"perf/driver.py": (
            "import time\n"
            "from repro.core.cyclo import cyclo_compact\n"
            "def schedule(graph, arch, budget):\n"
            "    left = budget - time.monotonic()\n"
            "    return cyclo_compact(graph, arch, "
            "deadline_seconds=left)\n"
        )})
        assert "RD103" not in codes(report)


class TestRD104CompletionOrder:
    def test_as_completed_iteration(self, tmp_path):
        report = run(tmp_path, {"perf/pool.py": (
            "from concurrent.futures import as_completed\n"
            "def gather(futures):\n"
            "    total = 0.0\n"
            "    for fut in as_completed(futures):\n"
            "        total += fut.result()\n"
            "    return total\n"
        )})
        assert "RD104" in codes(report)

    def test_submission_order_is_clean(self, tmp_path):
        report = run(tmp_path, {"perf/pool.py": (
            "def gather(futures):\n"
            "    total = 0.0\n"
            "    for fut in futures:\n"
            "        total += fut.result()\n"
            "    return total\n"
        )})
        assert codes(report) == []


class TestRC201UnfrozenContendedPricing:
    def test_missing_occupancy(self, tmp_path):
        report = run(tmp_path, {"core/price.py": (
            "from repro.arch.cache import CommCostCache\n"
            "def price(arch, graph, model):\n"
            "    return CommCostCache.for_graph(arch, graph, "
            "contention=model)\n"
        )})
        assert "RC201" in codes(report)

    def test_bare_empty_ledger(self, tmp_path):
        report = run(tmp_path, {"core/price.py": (
            "from repro.arch.cache import CommCostCache\n"
            "from repro.arch.contention import LinkOccupancy\n"
            "def price(arch, graph, model):\n"
            "    return CommCostCache.for_graph(arch, graph, "
            "contention=model, occupancy=LinkOccupancy(arch))\n"
        )})
        assert "RC201" in codes(report)

    def test_frozen_snapshot_is_clean(self, tmp_path):
        report = run(tmp_path, {"core/price.py": (
            "from repro.arch.cache import CommCostCache\n"
            "from repro.arch.contention import LinkOccupancy\n"
            "def price(arch, graph, model, schedule):\n"
            "    occ = LinkOccupancy.from_assignment(graph, arch, "
            "schedule)\n"
            "    return CommCostCache.for_graph(arch, graph, "
            "contention=model, occupancy=occ)\n"
        )})
        assert "RC201" not in codes(report)

    def test_contention_free_cache_is_clean(self, tmp_path):
        report = run(tmp_path, {"core/price.py": (
            "from repro.arch.cache import CommCostCache\n"
            "def price(arch, graph):\n"
            "    return CommCostCache.for_graph(arch, graph)\n"
        )})
        assert codes(report) == []


class TestRC202StaleFreezeAcrossRemap:
    FREEZE = (
        "from repro.arch.cache import CommCostCache\n"
        "from repro.arch.contention import LinkOccupancy\n"
        "from repro.core.remapping import remap_nodes\n"
    )

    def test_snapshot_consumed_by_earlier_remap(self, tmp_path):
        report = run(tmp_path, {"resilience/fix.py": (
            self.FREEZE
            + "def repair(graph, arch, model, schedule):\n"
            "    occ = LinkOccupancy.from_assignment(graph, arch, "
            "schedule)\n"
            "    comm = CommCostCache.for_graph(arch, graph, "
            "contention=model, occupancy=occ)\n"
            "    first = remap_nodes(graph, arch, comm=comm)\n"
            "    second = remap_nodes(graph, arch, comm=comm)\n"
            "    return second\n"
        )})
        assert "RC202" in codes(report)
        (diag,) = [d for d in report.diagnostics if d.code == "RC202"]
        assert "already" in diag.message

    def test_snapshot_frozen_outside_loop(self, tmp_path):
        report = run(tmp_path, {"resilience/fix.py": (
            self.FREEZE
            + "def repair(graph, arch, model, schedule, rounds):\n"
            "    occ = LinkOccupancy.from_assignment(graph, arch, "
            "schedule)\n"
            "    comm = CommCostCache.for_graph(arch, graph, "
            "contention=model, occupancy=occ)\n"
            "    out = None\n"
            "    for _ in range(rounds):\n"
            "        out = remap_nodes(graph, arch, comm=comm)\n"
            "    return out\n"
        )})
        assert "RC202" in codes(report)
        (diag,) = [d for d in report.diagnostics if d.code == "RC202"]
        assert "loop" in diag.message

    def test_refreeze_before_each_remap_is_clean(self, tmp_path):
        # the shipped repair-path discipline: freeze, remap, re-freeze
        src = (
            self.FREEZE
            + "def repair(graph, arch, model, schedule, rounds):\n"
            "    out = None\n"
            "    for _ in range(rounds):\n"
            "        occ = LinkOccupancy.from_assignment(graph, arch, "
            "schedule)\n"
            "        comm = CommCostCache.for_graph(arch, graph, "
            "contention=model, occupancy=occ)"
            "  # repro-lint: disable=RC203 (per-round reprice)\n"
            "        out = remap_nodes(graph, arch, comm=comm)\n"
            "        schedule = out.schedule\n"
            "    return out\n"
        )
        report = run(tmp_path, {"resilience/fix.py": src})
        assert "RC202" not in codes(report)

    def test_contention_free_comm_is_clean(self, tmp_path):
        report = run(tmp_path, {"resilience/fix.py": (
            self.FREEZE
            + "def repair(graph, arch, rounds):\n"
            "    comm = CommCostCache.for_graph(arch, graph)\n"
            "    out = None\n"
            "    for _ in range(rounds):\n"
            "        out = remap_nodes(graph, arch, comm=comm)\n"
            "    return out\n"
        )})
        assert "RC202" not in codes(report)


class TestRC203CacheInHotLoop:
    def test_construction_inside_loop(self, tmp_path):
        report = run(tmp_path, {"core/hot.py": (
            "from repro.arch.cache import CommCostCache\n"
            "def reprice(arch, graphs):\n"
            "    out = []\n"
            "    for g in graphs:\n"
            "        out.append(CommCostCache.for_graph(arch, g))\n"
            "    return out\n"
        )})
        assert "RC203" in codes(report)

    def test_hoisted_construction_is_clean(self, tmp_path):
        report = run(tmp_path, {"core/hot.py": (
            "from repro.arch.cache import CommCostCache\n"
            "def reprice(arch, graph, items):\n"
            "    comm = CommCostCache.for_graph(arch, graph)\n"
            "    out = []\n"
            "    for item in items:\n"
            "        out.append(comm.cost(0, 1, item))\n"
            "    return out\n"
        )})
        assert codes(report) == []

    def test_suppression_is_honoured_and_counted(self, tmp_path):
        report = run(tmp_path, {"core/hot.py": (
            "from repro.arch.cache import CommCostCache\n"
            "def reprice(arch, graphs):\n"
            "    out = []\n"
            "    for g in graphs:\n"
            "        out.append(CommCostCache.for_graph(arch, g))"
            "  # repro-lint: disable=RC203 (test)\n"
            "    return out\n"
        )})
        assert codes(report) == [] and report.suppressed == 1


class TestRC204BackendBranchOutsideKernels:
    def test_backend_reference(self, tmp_path):
        report = run(tmp_path, {"core/fast.py": (
            "from repro.core.kernels import BACKEND\n"
            "def pick(rows):\n"
            "    if BACKEND == 'numpy':\n"
            "        return rows\n"
            "    return list(rows)\n"
        )})
        assert "RC204" in codes(report)

    def test_guarded_numpy_import(self, tmp_path):
        report = run(tmp_path, {"perf/fast.py": (
            "try:\n"
            "    import numpy as np\n"
            "except ImportError:\n"
            "    np = None\n"
            "def rows(xs):\n"
            "    return xs\n"
        )})
        assert "RC204" in codes(report)

    def test_env_pin_read(self, tmp_path):
        report = run(tmp_path, {"obs/pin.py": (
            "import os\n"
            "def backend_name():\n"
            "    return os.environ.get('REPRO_KERNELS', 'numpy')\n"
        )})
        assert "RC204" in codes(report)

    def test_qa_oracles_are_allowlisted(self, tmp_path):
        report = run(tmp_path, {"qa/oracle.py": (
            "from repro.core.kernels import np_kernels, py_kernels\n"
            "def agree(rows):\n"
            "    if np_kernels is None:\n"
            "        return True\n"
            "    return np_kernels == py_kernels\n"
        )})
        assert "RC204" not in codes(report)


class TestEngineBehaviour:
    def test_missing_path_is_analysis_error(self, tmp_path):
        with pytest.raises(AnalysisError, match="no such file"):
            analyze_flow([tmp_path / "nope"])

    def test_syntax_error_is_analysis_error(self, tmp_path):
        with pytest.raises(AnalysisError, match="cannot parse"):
            run(tmp_path, {"core/broken.py": "def f(:\n"})

    def test_cross_file_taint_propagation(self, tmp_path):
        # source in one module, dispatch in another: the call graph
        # must connect them through the import
        report = run(tmp_path, {
            "perf/noise.py": (
                "import random\n"
                "def jitter(item):\n"
                "    return random.random()\n"
            ),
            "perf/driver.py": (
                "from repro.perf.noise import jitter\n"
                "from repro.perf.parallel import run_parallel\n"
                "def drive(items):\n"
                "    return run_parallel(jitter, items, jobs=2)\n"
            ),
        })
        assert "RD101" in codes(report)
        (diag,) = [d for d in report.diagnostics if d.code == "RD101"]
        assert diag.file.endswith("driver.py")

    def test_witness_names_the_source(self, tmp_path):
        report = run(tmp_path, {"perf/driver.py": (
            "import random\n"
            "from repro.perf.parallel import run_parallel\n"
            "def payload(item):\n"
            "    return random.random()\n"
            "def drive(items):\n"
            "    return run_parallel(payload, items)\n"
        )})
        (diag,) = report.diagnostics
        assert "random.random()" in diag.message


class TestShippedTree:
    SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

    def test_zero_flow_errors(self):
        report = analyze_flow([self.SRC])
        assert [d for d in report.diagnostics
                if d.severity == "error"] == []

    def test_documented_suppressions_present(self):
        # the contention fixpoint's per-round reprice (RC203 x2) and
        # the deadline budget checks in cyclo (RD103 x2)
        report = analyze_flow([self.SRC])
        assert report.suppressed == 4
