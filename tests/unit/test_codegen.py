"""Unit tests for program extraction (code generation)."""

import pytest

from repro.arch import CompletelyConnected, LinearArray
from repro.codegen import generate_program
from repro.core import CycloConfig, cyclo_compact, start_up_schedule
from repro.errors import ScheduleValidationError
from repro.schedule import ScheduleTable
from repro.workloads import figure1_csdfg, figure1_mesh


@pytest.fixture
def fig1_program():
    g, m = figure1_csdfg(), figure1_mesh()
    s = start_up_schedule(g, m)
    return g, m, s, generate_program(g, m, s)


class TestStructure:
    def test_every_node_computed_once(self, fig1_program):
        g, _, _, prog = fig1_program
        assert prog.total_computes == g.num_nodes
        names = [op.node for p in prog.pes for op in p.computes]
        assert sorted(names) == sorted(g.nodes())

    def test_compute_matches_placement(self, fig1_program):
        g, _, s, prog = fig1_program
        for pe_prog in prog.pes:
            for op in pe_prog.computes:
                placement = s.placement(op.node)
                assert placement.pe == pe_prog.pe
                assert placement.start == op.cs
                assert placement.duration == op.duration

    def test_send_recv_pairing(self, fig1_program):
        g, _, s, prog = fig1_program
        remote_edges = [
            e
            for e in g.edges()
            if s.processor(e.src) != s.processor(e.dst)
        ]
        sends = [op for p in prog.pes for op in p.sends]
        recvs = [op for p in prog.pes for op in p.recvs]
        assert len(sends) == len(recvs) == len(remote_edges)
        send_keys = {(op.src, op.dst) for op in sends}
        recv_keys = {(op.src, op.dst) for op in recvs}
        assert send_keys == recv_keys == {(e.src, e.dst) for e in remote_edges}

    def test_send_timing(self, fig1_program):
        g, m, s, prog = fig1_program
        for p in prog.pes:
            for op in p.sends:
                assert op.after_cs == s.finish(op.src)
                assert op.transit == m.comm_cost(
                    s.processor(op.src), op.to_pe, op.volume
                )

    def test_recv_timing(self, fig1_program):
        _, _, s, prog = fig1_program
        for p in prog.pes:
            for op in p.recvs:
                assert op.by_cs == s.start(op.dst)

    def test_local_edges_generate_no_messages(self):
        from repro.graph import CSDFG

        g = CSDFG("local")
        g.add_node("u", 1)
        g.add_node("v", 1)
        g.add_edge("u", "v", 0, 3)
        arch = CompletelyConnected(2)
        s = ScheduleTable(2)
        s.place("u", 0, 1, 1)
        s.place("v", 0, 2, 1)
        prog = generate_program(g, arch, s)
        assert prog.total_sends == 0


class TestRendering:
    def test_render_contains_all_ops(self, fig1_program):
        _, _, _, prog = fig1_program
        text = prog.render()
        assert "steady-state loop body" in text
        assert "compute A" in text
        assert "send" in text and "recv" in text
        assert "pe1:" in text

    def test_idle_pe_marked(self, fig1_program):
        _, _, _, prog = fig1_program
        text = prog.render()
        assert "(idle)" in text  # pe3/pe4 are unused in the startup


class TestGuards:
    def test_rejects_illegal_schedule(self, figure1, mesh2x2):
        bogus = ScheduleTable(mesh2x2.num_pes)
        bogus.place("A", 0, 1, 1)
        with pytest.raises(ScheduleValidationError):
            generate_program(figure1, mesh2x2, bogus)

    def test_compacted_schedule_program(self, figure7):
        arch = LinearArray(8)
        cfg = CycloConfig(max_iterations=20, validate_each_step=False)
        result = cyclo_compact(figure7, arch, config=cfg)
        prog = generate_program(result.graph, arch, result.schedule)
        assert prog.length == result.final_length
        assert prog.total_computes == 19
