"""`repro.obs` must stay dependency-free.

The instrumentation layer is imported by every hot module in the
library; it must never pull in numpy/networkx (or anything else beyond
the standard library), and therefore needs no optional-dependency
group in pyproject.toml.  This test walks the import statements of
every module in the package and pins that property.
"""

import ast
import sys
from pathlib import Path

import repro.obs

OBS_DIR = Path(repro.obs.__file__).parent


def _imported_top_levels(path: Path) -> set[str]:
    tree = ast.parse(path.read_text())
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            names.update(alias.name.split(".")[0] for alias in node.names)
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0 and node.module:
                names.add(node.module.split(".")[0])
    return names


def test_obs_modules_import_only_stdlib_and_repro():
    stdlib = set(sys.stdlib_module_names)
    modules = sorted(OBS_DIR.glob("*.py"))
    assert modules, "repro.obs has no modules?"
    for module in modules:
        for name in _imported_top_levels(module):
            assert name == "repro" or name in stdlib, (
                f"{module.name} imports non-stdlib module {name!r}; "
                "repro.obs must stay zero-dependency"
            )


def test_obs_importable_without_third_party_side_effects():
    # the package (already imported) exposes its public API regardless
    # of whether numpy/networkx are importable
    for attr in ("span", "InMemorySink", "NDJSONSink", "metrics",
                 "write_chrome_trace", "phase_breakdown"):
        assert hasattr(repro.obs, attr)
