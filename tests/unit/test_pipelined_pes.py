"""Unit tests for the pipelined processing-element mode (paper §2)."""

import pytest

from repro.arch import CompletelyConnected, LinearArray
from repro.core import CycloConfig, cyclo_compact, start_up_schedule
from repro.errors import PlacementConflictError
from repro.graph import CSDFG
from repro.schedule import (
    Placement,
    ScheduleTable,
    collect_violations,
    is_valid_schedule,
)
from repro.sim import simulate
from repro.workloads import figure1_csdfg, figure1_mesh


def mul_chain():
    """Three independent 3-cycle tasks kept live by self-loops."""
    g = CSDFG("muls")
    for n in "abc":
        g.add_node(n, 3)
        g.add_edge(n, n, 1, 1)
    return g


class TestPlacementOccupancy:
    def test_default_occupancy_is_duration(self):
        p = Placement("a", 0, 1, 3)
        assert p.occupancy == 3
        assert p.busy_until == 3

    def test_pipelined_occupancy(self):
        p = Placement("a", 0, 2, 3, occupancy=1)
        assert p.finish == 4
        assert p.busy_until == 2

    def test_occupancy_bounds(self):
        with pytest.raises(Exception):
            Placement("a", 0, 1, 2, occupancy=0)
        with pytest.raises(Exception):
            Placement("a", 0, 1, 2, occupancy=3)

    def test_table_back_to_back_issue(self):
        t = ScheduleTable(1)
        t.place("a", 0, 1, 3, occupancy=1)
        t.place("b", 0, 2, 3, occupancy=1)  # issues while a executes
        assert t.finish("a") == 3 and t.finish("b") == 4

    def test_same_issue_step_conflicts(self):
        t = ScheduleTable(1)
        t.place("a", 0, 1, 3, occupancy=1)
        with pytest.raises(PlacementConflictError):
            t.place("b", 0, 1, 2, occupancy=1)


class TestValidatorPipelined:
    def test_overlapping_execution_legal_when_pipelined(self):
        g = mul_chain()
        arch = CompletelyConnected(1)
        t = ScheduleTable(1)
        t.place("a", 0, 1, 3, occupancy=1)
        t.place("b", 0, 2, 3, occupancy=1)
        t.place("c", 0, 3, 3, occupancy=1)
        t.set_length(5)
        assert is_valid_schedule(g, arch, t, pipelined_pes=True)
        assert not is_valid_schedule(g, arch, t)  # illegal on plain PEs

    def test_same_issue_step_still_illegal(self):
        g = mul_chain()
        arch = CompletelyConnected(1)
        t = ScheduleTable(1)
        t.place("a", 0, 1, 3, occupancy=1)
        # bypass the table's own guard to exercise the validator
        t._placements["b"] = Placement("b", 0, 1, 3, occupancy=1)
        t._placements["c"] = Placement("c", 0, 2, 3, occupancy=1)
        t.set_length(5)
        issues = collect_violations(g, arch, t, pipelined_pes=True)
        assert any("resource conflict" in i for i in issues)


class TestSchedulersPipelined:
    def test_startup_packs_tighter(self):
        g = mul_chain()
        arch = CompletelyConnected(1)
        plain = start_up_schedule(g, arch)
        piped = start_up_schedule(g, arch, pipelined_pes=True)
        assert piped.makespan < plain.makespan
        assert is_valid_schedule(g, arch, piped, pipelined_pes=True)

    def test_cyclo_pipelined_valid_and_competitive(self):
        # pipelining enlarges the feasible space, but the optimiser is a
        # heuristic, so compare with slack rather than strictly
        g, m = figure1_csdfg(), figure1_mesh()
        plain = cyclo_compact(g, m)
        piped = cyclo_compact(g, m, config=CycloConfig(pipelined_pes=True))
        assert piped.final_length <= plain.final_length + 1
        assert piped.final_length <= piped.initial_length
        assert is_valid_schedule(
            piped.graph, m, piped.schedule, pipelined_pes=True
        )

    def test_pipelined_single_pe_reaches_issue_limit(self):
        # on one pipelined PE the bound is one issue per control step
        g = mul_chain()
        arch = CompletelyConnected(1)
        result = cyclo_compact(
            g, arch, config=CycloConfig(pipelined_pes=True)
        )
        # 3 tasks, self-loop latency 3: L >= 3; issue limit: L >= 3
        assert result.final_length <= 5

    def test_simulator_accepts_pipelined_schedule(self):
        g = mul_chain()
        arch = CompletelyConnected(1)
        s = start_up_schedule(g, arch, pipelined_pes=True)
        simulate(g, arch, s, iterations=4, pipelined_pes=True)

    def test_rotation_round_trip_keeps_occupancy(self):
        from repro.core import rotate_schedule, undo_rotation

        g = mul_chain()
        arch = CompletelyConnected(1)
        s = start_up_schedule(g, arch, pipelined_pes=True)
        snapshot = s.copy()
        working = g.copy()
        rotated, old = rotate_schedule(working, s)
        undo_rotation(working, s, rotated, old, snapshot.length)
        assert s.same_placements(snapshot)
        assert all(
            s.placement(n).occupancy == snapshot.placement(n).occupancy
            for n in g.nodes()
        )


class TestPipelinedOnMultiPe:
    def test_valid_across_architectures(self, figure7):
        for arch in (LinearArray(4), CompletelyConnected(4)):
            cfg = CycloConfig(
                pipelined_pes=True, max_iterations=20, validate_each_step=False
            )
            result = cyclo_compact(figure7, arch, config=cfg)
            assert is_valid_schedule(
                result.graph, arch, result.schedule, pipelined_pes=True
            )
            assert result.final_length <= result.initial_length
