"""Unit tests for architecture recommendation."""

from repro.analysis import recommend_architecture
from repro.arch import CompletelyConnected, LinearArray
from repro.core import CycloConfig

FAST = CycloConfig(max_iterations=15, validate_each_step=False)


class TestRecommend:
    def test_default_candidates_are_paper_set(self, figure7):
        scores = recommend_architecture(figure7, config=FAST)
        assert {s.key for s in scores} == {"com", "lin", "rin", "2-d", "hyp"}

    def test_sorted_best_first(self, figure7):
        scores = recommend_architecture(figure7, config=FAST)
        keys = [s.sort_key for s in scores]
        assert keys == sorted(keys)

    def test_length_dominates_cost(self, figure7):
        scores = recommend_architecture(figure7, config=FAST)
        best = scores[0]
        assert all(best.length <= s.length for s in scores)

    def test_cheaper_topology_wins_ties(self, figure1):
        # on a small workload where both machines reach the same length,
        # the one with fewer links must rank first
        candidates = {
            "com": CompletelyConnected(4),
            "lin": LinearArray(4),
        }
        scores = recommend_architecture(figure1, candidates, config=FAST)
        by_key = {s.key: s for s in scores}
        if by_key["com"].length == by_key["lin"].length:
            assert scores[0].key == "lin"  # 3 links < 6 links

    def test_custom_candidates(self, figure1):
        candidates = {"only": CompletelyConnected(4)}
        scores = recommend_architecture(figure1, candidates, config=FAST)
        assert len(scores) == 1
        assert scores[0].name == "complete4"
        assert scores[0].links == 6
