"""Cayley-graph topology generator: vertex-transitivity and the
hops-matrix-preserving refactor of the classical constructors.

Satellite properties of the Cayley tentpole:

* every registered Cayley family member is vertex-transitive — for
  each processor the left-translation automorphism returned by
  ``automorphism_onto`` carries the identity PE onto it while mapping
  the link set onto itself (the automorphism-orbit check);
* the ``Ring`` and ``Hypercube`` rebuilds are link-for-link identical
  to the pre-refactor by-hand constructions, so every hops matrix (and
  therefore every schedule) is bit-identical.
"""

from collections import deque

import pytest

from repro.arch import (
    ARCHITECTURE_KINDS,
    BubbleSortGraph,
    CayleyTopology,
    Circulant,
    Hypercube,
    PancakeGraph,
    Ring,
    StarGraph,
    make_architecture,
)
from repro.errors import ArchitectureError

#: One instance of every registered Cayley family member (kept small:
#: the orbit check visits every PE's automorphism).
CAYLEY_MEMBERS = [
    Ring(5),
    Ring(8),
    Hypercube(3),
    Hypercube(4),
    Circulant(8, steps=(1, 2)),
    Circulant(9, steps=(1, 3)),
    StarGraph(3),
    StarGraph(4),
    BubbleSortGraph(4),
    PancakeGraph(4),
]


def _bfs_hops(num_pes, links):
    """All-pairs hop counts of an undirected link list, independently
    of Architecture's matrix construction."""
    adjacency = {pe: [] for pe in range(num_pes)}
    for a, b in links:
        adjacency[a].append(b)
        adjacency[b].append(a)
    dist = {}
    for src in range(num_pes):
        seen = {src: 0}
        queue = deque([src])
        while queue:
            node = queue.popleft()
            for nxt in adjacency[node]:
                if nxt not in seen:
                    seen[nxt] = seen[node] + 1
                    queue.append(nxt)
        for dst, d in seen.items():
            dist[(src, dst)] = d
    return dist


class TestVertexTransitivity:
    @pytest.mark.parametrize(
        "arch", CAYLEY_MEMBERS, ids=lambda a: a.name
    )
    def test_automorphism_orbit_covers_every_pe(self, arch):
        identity_pe = arch.pe_of(arch._identity)
        link_set = set(arch.links)
        for pe in range(arch.num_pes):
            perm = arch.automorphism_onto(pe)
            # a permutation of the PEs...
            assert sorted(perm) == list(range(arch.num_pes))
            # ...carrying the identity's PE onto pe...
            assert perm[identity_pe] == pe
            # ...and the link set onto itself: an automorphism
            mapped = {
                (min(perm[a], perm[b]), max(perm[a], perm[b]))
                for a, b in link_set
            }
            assert mapped == link_set

    @pytest.mark.parametrize(
        "arch", CAYLEY_MEMBERS, ids=lambda a: a.name
    )
    def test_degree_regular(self, arch):
        degrees = {len(arch.neighbors(pe)) for pe in range(arch.num_pes)}
        assert len(degrees) == 1
        assert degrees.pop() == len(arch.generators)

    @pytest.mark.parametrize(
        "arch", CAYLEY_MEMBERS, ids=lambda a: a.name
    )
    def test_every_pe_sees_the_same_distance_profile(self, arch):
        # vertex-transitivity in hops terms: every row of the distance
        # matrix is a permutation of every other row
        dist = arch.distance_matrix
        profile = sorted(dist[0].tolist())
        for pe in range(1, arch.num_pes):
            assert sorted(dist[pe].tolist()) == profile


class TestClassicalRebuildsUnchanged:
    @pytest.mark.parametrize("n", [3, 4, 5, 8, 12])
    def test_ring_links_and_hops_match_prerefactor(self, n):
        ring = Ring(n)
        expected_links = sorted(
            (min(i, (i + 1) % n), max(i, (i + 1) % n)) for i in range(n)
        )
        assert list(ring.links) == expected_links
        hand = _bfs_hops(n, expected_links)
        for src in range(n):
            for dst in range(n):
                assert ring.hops(src, dst) == hand[(src, dst)]

    @pytest.mark.parametrize("dim", [1, 2, 3, 4, 6])
    def test_hypercube_links_and_hops_match_prerefactor(self, dim):
        cube = Hypercube(dim)
        n = 1 << dim
        expected_links = sorted(
            {
                (min(x, x ^ (1 << bit)), max(x, x ^ (1 << bit)))
                for x in range(n)
                for bit in range(dim)
            }
        )
        assert list(cube.links) == expected_links
        for src in range(n):
            for dst in range(n):
                # hypercube hops are exactly the Hamming distance
                assert cube.hops(src, dst) == bin(src ^ dst).count("1")

    def test_ring_and_hypercube_are_cayley(self):
        assert isinstance(Ring(4), CayleyTopology)
        assert isinstance(Hypercube(3), CayleyTopology)
        # class identity survives (e-cube routing dispatches on it)
        assert isinstance(make_architecture("hypercube", 8), Hypercube)
        assert isinstance(make_architecture("ring", 5), Ring)

    def test_names_unchanged(self):
        assert Ring(8).name == "ring8"
        assert Hypercube(3).name == "3-cube"


class TestFamilyMembers:
    def test_circulant_chords_cut_the_diameter(self):
        ring = Ring(12)
        chord = Circulant(12, steps=(1, 3))
        assert chord.diameter < ring.diameter
        # the ring's links are a subset of the chorded machine's
        assert set(ring.links) <= set(chord.links)

    def test_circulant_normalises_steps(self):
        # -1 == n-1 mod n; duplicates collapse
        a = Circulant(8, steps=(1, 2))
        b = Circulant(8, steps=(2, 1, 9))
        assert a.links == b.links

    def test_star_graph_shape(self):
        st = StarGraph(4)
        assert st.num_pes == 24
        assert len(st.generators) == 3  # degree k - 1

    def test_bubble_sort_diameter(self):
        bs = BubbleSortGraph(4)
        assert bs.num_pes == 24
        assert bs.diameter == 6  # k(k-1)/2 adjacent swaps

    def test_pancake_flips_are_self_inverse(self):
        pc = PancakeGraph(4)
        for g in pc.generators:
            assert pc._compose(g, g) == pc._identity


class TestPresentationValidation:
    def test_generator_without_inverse_rejected(self):
        with pytest.raises(ArchitectureError):
            CayleyTopology(
                range(5), lambda x, g: (x + g) % 5, 0, [1], name="bad"
            )

    def test_identity_generator_rejected(self):
        with pytest.raises(ArchitectureError):
            CayleyTopology(
                range(4), lambda x, g: (x + g) % 4, 0, [0, 2], name="bad"
            )

    def test_composition_must_stay_in_the_set(self):
        with pytest.raises(ArchitectureError):
            CayleyTopology(
                range(4), lambda x, g: x + g, 0, [1, 3], name="bad"
            )

    def test_circulant_needs_nonzero_steps(self):
        with pytest.raises(ArchitectureError):
            Circulant(6, steps=(6,))

    def test_factorial_sizing_enforced_by_registry(self):
        for kind in ("cayley-star", "cayley-bubble", "pancake"):
            with pytest.raises(ArchitectureError):
                make_architecture(kind, 7)
            arch = make_architecture(kind, 6)
            assert arch.num_pes == 6

    def test_registry_builds_every_cayley_kind(self):
        assert isinstance(make_architecture("circulant", 8), Circulant)
        assert isinstance(make_architecture("cayley-star", 24), StarGraph)
        assert isinstance(
            make_architecture("cayley-bubble", 24), BubbleSortGraph
        )
        assert isinstance(make_architecture("pancake", 24), PancakeGraph)
