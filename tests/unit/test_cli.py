"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestList:
    def test_lists_workloads_and_kinds(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "figure1" in out
        assert "elliptic5" in out
        assert "hypercube" in out


class TestInfo:
    def test_figure1_stats(self, capsys):
        assert main(["info", "figure1"]) == 0
        out = capsys.readouterr().out
        assert "nodes:           6" in out
        assert "iteration bound: 3" in out

    def test_rejects_unknown_workload(self, capsys):
        # a one-line friendly error listing the registry, not a traceback
        assert main(["info", "nonsense"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error: unknown workload 'nonsense'")
        assert "figure1" in err and "elliptic5" in err

    def test_rejects_unknown_architecture(self, capsys):
        assert main(["schedule", "figure1", "--arch", "moebius"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error: unknown architecture kind 'moebius'")
        assert "mesh" in err and "hypercube" in err


class TestSchedule:
    def test_default_run(self, capsys):
        assert main(
            ["schedule", "--workload", "figure1", "--arch", "mesh", "--pes", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "7 ->" in out
        assert "compacted schedule:" in out
        assert "pe1" in out

    def test_gantt_render(self, capsys):
        assert main(
            [
                "schedule",
                "--workload",
                "figure1",
                "--arch",
                "complete",
                "--pes",
                "4",
                "--render",
                "gantt",
            ]
        ) == 0
        assert "pe1" in capsys.readouterr().out

    def test_no_render(self, capsys):
        assert main(
            [
                "schedule",
                "--workload",
                "diffeq",
                "--arch",
                "ring",
                "--pes",
                "4",
                "--render",
                "none",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "control steps" in out
        assert "cs |" not in out

    def test_no_relax_and_pipelined_flags(self, capsys):
        assert main(
            [
                "schedule",
                "--workload",
                "figure1",
                "--arch",
                "mesh",
                "--pes",
                "4",
                "--no-relax",
                "--pipelined",
                "--iterations",
                "5",
                "--render",
                "none",
            ]
        ) == 0

    def test_slowdown_flag(self, capsys):
        assert main(
            [
                "schedule",
                "--workload",
                "lattice4",
                "--arch",
                "linear",
                "--pes",
                "4",
                "--slowdown",
                "2",
                "--render",
                "none",
            ]
        ) == 0

    def test_bad_architecture_size_reports_error(self, capsys):
        # hypercube needs a power-of-two PE count
        code = main(
            [
                "schedule",
                "--workload",
                "figure1",
                "--arch",
                "hypercube",
                "--pes",
                "6",
            ]
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_schedule_with_restarts(self, capsys):
        assert main(
            [
                "schedule",
                "figure7",
                "--arch",
                "mesh",
                "--pes",
                "8",
                "--iterations",
                "12",
                "--restarts",
                "2",
                "--render",
                "none",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "best of 2 restarts" in out
        assert "restart 0" in out and "restart 1" in out
        assert "control steps" in out

    def test_restarts_reject_refine(self, capsys):
        assert main(
            ["schedule", "figure7", "--restarts", "2", "--refine"]
        ) == 1
        assert "--refine" in capsys.readouterr().err


class TestScale:
    def test_scale_quick(self, tmp_path, capsys):
        out_file = tmp_path / "scale.json"
        hist = tmp_path / "hist"
        assert main(
            [
                "scale",
                "--quick",
                "--history-dir",
                str(hist),
                "--out",
                str(out_file),
            ]
        ) == 0
        out = capsys.readouterr().out
        # quick mode = the first cell plus every contended cell
        assert "scale tier (quick): 2 cell(s)" in out
        assert "nodes/s" in out
        assert "2 scale record(s)" in out
        assert (hist / "scale.ndjson").exists()
        payload = json.loads(out_file.read_text())
        assert payload["quick"] is True
        assert payload["results"][0]["size"] == 1000
        assert any(r.get("contention") for r in payload["results"])


class TestSimulate:
    def test_simulation_stats(self, capsys):
        assert main(
            [
                "simulate",
                "--workload",
                "figure1",
                "--arch",
                "mesh",
                "--pes",
                "4",
                "--loops",
                "4",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "simulated 4 iterations" in out
        assert "throughput" in out
        assert "buffer tokens" in out


class TestExperiment:
    def test_figure1(self, capsys):
        assert main(["experiment", "figure1", "--iterations", "20"]) == 0
        out = capsys.readouterr().out
        assert "start-up (paper: 7 cs):" in out
        assert "compacted (paper: 5 cs" in out

    def test_tables19(self, capsys):
        assert main(["experiment", "tables19", "--iterations", "20"]) == 0
        out = capsys.readouterr().out
        assert "com" in out and "hyp" in out


class TestFaults:
    def test_repair_kill_pe(self, capsys):
        assert main(
            ["faults", "repair", "figure1", "--kill-pe", "1",
             "--render", "none"]
        ) == 0
        out = capsys.readouterr().out
        assert "permanent failure of pe1" in out
        assert "repair (" in out and "surviving" in out

    def test_repair_requires_a_fault(self, capsys):
        assert main(["faults", "repair", "figure1"]) == 1
        assert "nothing to repair" in capsys.readouterr().err

    def test_repair_bad_link_spec(self, capsys):
        assert main(
            ["faults", "repair", "figure1", "--cut-link", "banana"]
        ) == 1
        assert "--cut-link expects" in capsys.readouterr().err

    def test_inject_random_campaign(self, capsys):
        assert main(
            ["faults", "inject", "figure1", "--arch", "complete",
             "--seed", "3", "--faults", "1", "--loops", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "campaign" in out and "iterations" in out

    def test_inject_campaign_file(self, tmp_path, capsys):
        from repro.resilience import FaultCampaign, PEFault

        path = tmp_path / "c.json"
        path.write_text(FaultCampaign([PEFault(0, at_step=1)]).to_json())
        assert main(
            ["faults", "inject", "figure1", "--arch", "complete",
             "--campaign", str(path), "--loops", "3"]
        ) == 0
        assert "failure of pe1" in capsys.readouterr().out

    def test_campaign_smoke(self, capsys):
        assert main(
            ["faults", "campaign", "--trials", "4", "--seed", "0"]
        ) == 0
        assert "INVARIANT HOLDS" in capsys.readouterr().out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_help_builds(self):
        parser = build_parser()
        assert parser.format_help()


class TestBrokenPipe:
    def test_broken_pipe_exits_zero(self, monkeypatch):
        # `python -m repro list | head -1` must exit 0, not print
        # "error: [Errno 32] ..." — BrokenPipeError is an OSError
        # subclass, so its handler has to come first in main()
        import repro.cli as cli

        def explode(*args, **kwargs):
            raise BrokenPipeError(32, "Broken pipe")

        monkeypatch.setattr(cli, "_cmd_list", explode)
        assert main(["list"]) == 0


class TestCodegen:
    def test_program_listing(self, capsys):
        assert main(
            [
                "codegen",
                "--workload",
                "figure1",
                "--arch",
                "mesh",
                "--pes",
                "4",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "steady-state loop body" in out
        assert "compute" in out
        assert "messages per iteration" in out


class TestRefineFlag:
    def test_refined_schedule_runs(self, capsys):
        assert main(
            [
                "schedule",
                "--workload",
                "figure7",
                "--arch",
                "linear",
                "--pes",
                "8",
                "--refine",
                "--render",
                "none",
                "--iterations",
                "30",
            ]
        ) == 0
        assert "control steps" in capsys.readouterr().out


class TestExperimentTable11:
    def test_table11_renders(self, capsys):
        assert main(["experiment", "table11", "--iterations", "5"]) == 0
        out = capsys.readouterr().out
        assert "Elliptic Filter" in out and "Lattice Filter" in out
        assert "com:init" in out and "hyp:after" in out
        assert "w/o" in out and "with" in out


class TestReport:
    def test_report_to_stdout(self, capsys):
        assert main(
            ["report", "--iterations", "15", "--skip-table11"]
        ) == 0
        out = capsys.readouterr().out
        assert "# Reproduction report" in out
        assert "Tables 1-10" in out
        assert "| com |" in out

    def test_report_to_file(self, tmp_path, capsys):
        target = tmp_path / "report.md"
        assert main(
            [
                "report",
                "--iterations",
                "10",
                "--skip-table11",
                "--out",
                str(target),
            ]
        ) == 0
        assert target.exists()
        assert "Figures 1-4" in target.read_text()
        assert "report written" in capsys.readouterr().out
