"""Unit tests for the exception hierarchy."""

import pytest

from repro.errors import (
    ArchitectureError,
    GraphError,
    GraphValidationError,
    IllegalRetimingError,
    InfeasibleScheduleError,
    PlacementConflictError,
    ReproError,
    RetimingError,
    ScheduleError,
    ScheduleValidationError,
    SchedulingError,
    UnknownProcessorError,
    WorkloadError,
)


class TestHierarchy:
    def test_single_base_class(self):
        for exc_type in (
            GraphError,
            RetimingError,
            ArchitectureError,
            ScheduleError,
            SchedulingError,
            WorkloadError,
        ):
            assert issubclass(exc_type, ReproError)

    def test_specialisations(self):
        assert issubclass(GraphValidationError, GraphError)
        assert issubclass(IllegalRetimingError, RetimingError)
        assert issubclass(UnknownProcessorError, ArchitectureError)
        assert issubclass(PlacementConflictError, ScheduleError)
        assert issubclass(ScheduleValidationError, ScheduleError)
        assert issubclass(InfeasibleScheduleError, SchedulingError)

    def test_catch_all(self):
        from repro.graph import CSDFG

        with pytest.raises(ReproError):
            CSDFG().time("ghost")


class TestStructuredErrors:
    def test_graph_validation_carries_issues(self):
        err = GraphValidationError(["a", "b"])
        assert err.issues == ["a", "b"]
        assert "a; b" in str(err)

    def test_schedule_validation_carries_violations(self):
        err = ScheduleValidationError(["x"])
        assert err.violations == ["x"]
        assert "x" in str(err)

    def test_library_raises_its_own_errors_only(self):
        """A sweep of representative misuse cases: every failure is a
        ReproError subclass, never a bare KeyError/ValueError."""
        from repro.arch import LinearArray
        from repro.graph import CSDFG
        from repro.schedule import ScheduleTable

        cases = [
            lambda: CSDFG().add_node("a", 0),
            lambda: LinearArray(2).hops(0, 9),
            lambda: ScheduleTable(0),
            lambda: ScheduleTable(1).remove("ghost"),
        ]
        for case in cases:
            with pytest.raises(ReproError):
                case()
