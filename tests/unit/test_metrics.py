"""Unit tests for schedule metrics."""

import pytest

from repro.arch import CompletelyConnected, LinearArray
from repro.graph import CSDFG
from repro.schedule import (
    ScheduleTable,
    compute_metrics,
    remote_edge_count,
    speedup,
    total_comm_cost,
    utilization,
)


@pytest.fixture
def pair():
    g = CSDFG("g")
    g.add_node("u", 2)
    g.add_node("v", 2)
    g.add_edge("u", "v", 0, 3)
    t = ScheduleTable(2)
    t.place("u", 0, 1, 2)
    t.place("v", 1, 6, 2)
    t.set_length(8)
    return g, t


class TestUtilization:
    def test_value(self, pair):
        _, t = pair
        assert utilization(t) == pytest.approx(4 / 16)

    def test_empty(self):
        assert utilization(ScheduleTable(2)) == 0.0


class TestSpeedup:
    def test_value(self, pair):
        g, t = pair
        assert speedup(g, t) == pytest.approx(4 / 8)

    def test_perfect_packing(self):
        g = CSDFG("g")
        g.add_node("a", 2)
        g.add_node("b", 2)
        t = ScheduleTable(2)
        t.place("a", 0, 1, 2)
        t.place("b", 1, 1, 2)
        assert speedup(g, t) == pytest.approx(2.0)


class TestComm:
    def test_cross_pe_cost(self, pair):
        g, t = pair
        assert total_comm_cost(g, LinearArray(2), t) == 3
        assert remote_edge_count(g, t) == 1

    def test_same_pe_free(self, pair):
        g, _ = pair
        t = ScheduleTable(2)
        t.place("u", 0, 1, 2)
        t.place("v", 0, 3, 2)
        assert total_comm_cost(g, LinearArray(2), t) == 0
        assert remote_edge_count(g, t) == 0


class TestBundle:
    def test_compute_metrics(self, pair):
        g, t = pair
        m = compute_metrics(g, CompletelyConnected(2), t)
        assert m.length == 8
        assert m.pes_used == 2
        assert m.comm_cost == 3
        row = m.as_row()
        assert row["length"] == 8
        assert 0 < row["utilization"] < 1
