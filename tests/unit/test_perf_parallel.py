"""The deterministic process-pool driver (`repro.perf.parallel`)."""

import os
import time

import pytest

from repro.errors import ReproError, WorkerCrashedError
from repro.obs import (
    InMemorySink,
    install_sink,
    metrics,
    remove_sink,
)
from repro.perf.parallel import run_parallel


def _square(x):
    return x * x


def _die_on_four(x):
    if x == 4:
        os._exit(13)  # hard interpreter death, not an exception
    time.sleep(0.02)  # let earlier items land before the crash surfaces
    return x * x


def _record(x):
    metrics.inc("parallel.test.calls")
    metrics.observe("parallel.test.value", float(x))
    return x


def _slow_identity(x):
    time.sleep(0.05)
    return x


def test_serial_equals_parallel():
    items = list(range(20))
    assert run_parallel(_square, items, jobs=1) == run_parallel(
        _square, items, jobs=4
    )


def test_results_in_item_order():
    items = [7, 3, 11, 1, 9, 2]
    assert run_parallel(_square, items, jobs=3) == [x * x for x in items]


def test_empty_items():
    assert run_parallel(_square, [], jobs=1) == []
    assert run_parallel(_square, [], jobs=4) == []


def test_jobs_must_be_positive():
    with pytest.raises(ValueError):
        run_parallel(_square, [1], jobs=0)


def test_budget_returns_prefix():
    items = list(range(50))
    got = run_parallel(
        _slow_identity, items, jobs=2, time_budget_seconds=0.12
    )
    assert 0 < len(got) < len(items)
    assert got == items[: len(got)]


def test_budget_prefix_serial():
    items = list(range(50))
    got = run_parallel(
        _slow_identity, items, jobs=1, time_budget_seconds=0.12
    )
    assert 0 < len(got) < len(items)
    assert got == items[: len(got)]


def test_killed_worker_raises_typed_error_with_completed_prefix():
    items = list(range(8))
    with pytest.raises(WorkerCrashedError) as excinfo:
        run_parallel(_die_on_four, items, jobs=2)
    err = excinfo.value
    assert isinstance(err, ReproError)  # catchable with the base class
    # results popped before the crash surfaced, in item order: always a
    # prefix, and never anything at or past the item that died
    expected = [x * x for x in items]
    assert err.completed == expected[: len(err.completed)]
    assert len(err.completed) <= 4
    assert "worker process died" in str(err)


def test_fn_exceptions_propagate_unwrapped():
    with pytest.raises(ValueError):
        run_parallel(_raise_on_two, [1, 2, 3], jobs=2)


def _raise_on_two(x):
    if x == 2:
        raise ValueError("bad item 2")
    return x


def test_worker_metrics_merge_into_parent():
    sink = InMemorySink()
    metrics.reset()
    install_sink(sink)
    try:
        run_parallel(_record, [1, 2, 3, 4, 5, 6], jobs=3)
        snap = metrics.snapshot()
    finally:
        remove_sink(sink)
    assert snap["counters"]["parallel.test.calls"] == 6
    hist = snap["histograms"]["parallel.test.value"]
    assert hist["count"] == 6
    assert hist["min"] == 1.0
    assert hist["max"] == 6.0
    assert hist["total"] == pytest.approx(21.0)


def test_no_metrics_shipped_when_obs_disabled():
    metrics.reset()
    run_parallel(_record, [1, 2, 3], jobs=2)
    snap = metrics.snapshot()
    # workers ran with their own registries; nothing merged back
    assert "parallel.test.calls" not in snap["counters"]
