"""The append-only run-history store (repro.obs.history)."""

import json

import pytest

import repro
from repro.obs.history import (
    HistoryError,
    HistoryStore,
    RunRecord,
    config_hash,
    load_records,
)


def _store(tmp_path, t0=1_000_000.0):
    """Store with a deterministic injected clock (1s per record)."""
    ticks = iter(range(10_000))
    return HistoryStore(
        tmp_path / "history", clock=lambda: t0 + next(ticks)
    )


class TestConfigHash:
    def test_key_order_irrelevant(self):
        assert config_hash({"a": 1, "b": 2}) == config_hash({"b": 2, "a": 1})

    def test_content_sensitive(self):
        assert config_hash({"a": 1}) != config_hash({"a": 2})

    def test_none_is_empty_object(self):
        assert config_hash(None) == config_hash({})


class TestRecordRoundTrip:
    def test_append_and_load(self, tmp_path):
        store = _store(tmp_path)
        rec = store.record(
            "schedule",
            workload="figure7",
            arch="hypercube8",
            config={"relaxation": True},
            duration_seconds=0.5,
            phases={"startup": 0.1, "remap": 0.3},
            counters={"cyclo.passes": 12},
            attrs={"final_length": 6},
        )
        loaded = store.load("schedule")
        assert loaded == [rec]
        assert loaded[0].engine_version == repro.__version__
        assert loaded[0].config_hash == config_hash({"relaxation": True})
        assert loaded[0].counters == {"cyclo.passes": 12}

    def test_append_only_across_store_instances(self, tmp_path):
        a = _store(tmp_path)
        a.record("sweep", workload="w", arch="ring4", duration_seconds=1.0)
        b = HistoryStore(tmp_path / "history", clock=lambda: 42.0)
        b.record("sweep", workload="w", arch="ring4", duration_seconds=2.0)
        assert [r.duration_seconds for r in b.load("sweep")] == [1.0, 2.0]

    def test_kinds_are_separate_files(self, tmp_path):
        store = _store(tmp_path)
        store.record("schedule", workload="w", arch="a", duration_seconds=1)
        store.record("fuzz", workload="w", arch="a", duration_seconds=1)
        assert store.kinds() == ["fuzz", "schedule"]
        assert len(store.load()) == 2
        assert len(store.load("fuzz")) == 1

    def test_invalid_kind_rejected(self, tmp_path):
        store = _store(tmp_path)
        for bad in ("", "../evil", ".hidden", "a/b"):
            with pytest.raises(HistoryError):
                store.record(bad, workload="w", arch="a", duration_seconds=1)


class TestByteStability:
    def test_same_inputs_same_bytes(self, tmp_path):
        kwargs = dict(
            kind="schedule",
            workload="figure7",
            arch="hypercube8",
            config_hash=config_hash({"seed": 7}),
            engine_version="1.0.0",
            timestamp=1000.0,
            duration_seconds=0.123456789,  # rounded on serialization
            phases={"remap": 0.1, "startup": 0.02},
            counters={"cyclo.passes": 3},
            attrs={"seed": 7},
        )
        assert RunRecord(**kwargs).to_json() == RunRecord(**kwargs).to_json()

    def test_serialized_form_is_sorted_single_line(self, tmp_path):
        rec = RunRecord(
            kind="x", workload="w", arch="a", config_hash="h",
            engine_version="1.0.0", timestamp=1.0, duration_seconds=2.0,
        )
        text = rec.to_json()
        assert "\n" not in text
        data = json.loads(text)
        assert list(data) == sorted(data)

    def test_floats_rounded_to_fixed_precision(self):
        rec = RunRecord(
            kind="x", workload="w", arch="a", config_hash="h",
            engine_version="1.0.0", timestamp=1.0,
            duration_seconds=0.1234567891234,
            phases={"p": 0.9999999999},
        )
        data = json.loads(rec.to_json())
        assert data["duration_seconds"] == 0.123457
        assert data["phases"]["p"] == 1.0

    def test_fixed_clock_store_is_byte_stable(self, tmp_path):
        def run(root):
            store = HistoryStore(root, clock=lambda: 12345.0)
            store.record(
                "gate", workload="figure7", arch="hypercube8",
                config={"seed": 1}, duration_seconds=0.25,
                phases={"remap": 0.2}, counters={"cyclo.passes": 2},
            )
            return (root / "gate.ndjson").read_bytes()

        assert run(tmp_path / "h1") == run(tmp_path / "h2")


class TestLoadRecords:
    def test_loads_files_and_directories(self, tmp_path):
        store = _store(tmp_path)
        store.record("schedule", workload="w", arch="a", duration_seconds=1)
        by_dir = load_records([tmp_path / "history"])
        by_file = load_records([tmp_path / "history" / "schedule.ndjson"])
        assert by_dir == by_file
        assert len(by_dir) == 1

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(HistoryError):
            load_records([tmp_path / "nope"])

    def test_corrupt_line_raises_with_location(self, tmp_path):
        target = tmp_path / "bad.ndjson"
        target.write_text('{"kind": "x"\n')
        with pytest.raises(HistoryError, match="bad.ndjson:1"):
            load_records([target])

    def test_incomplete_record_raises(self, tmp_path):
        target = tmp_path / "bad.ndjson"
        target.write_text('{"kind": "x"}\n')
        with pytest.raises(HistoryError, match="malformed"):
            load_records([target])
