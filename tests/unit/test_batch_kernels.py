"""Unit tests for the dual-backend batch kernels (repro.core.kernels).

The contract under test is *exact* equality: whatever numpy computes,
the pure-python fallback computes bit-for-bit, on every kernel, on
every input shape the engine produces — including degraded rows
holding ``None`` and the negative/ceil-division edge cases.  On top of
the raw kernels, one end-to-end case pins that a full compaction run
publishes **identical obs counters** under either backend (the
batching must be a pure implementation detail).
"""

import json
import random
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.kernels import BACKEND, BACKENDS, np_kernels, py_kernels

BACKEND_SETS = [py_kernels] + ([np_kernels] if np_kernels else [])
REPO_SRC = Path(__file__).resolve().parents[2] / "src"


def backend_ids():
    return [b.name for b in BACKEND_SETS]


@pytest.fixture(params=BACKEND_SETS, ids=backend_ids())
def kern(request):
    return request.param


class TestCommCostRow:
    def test_basic_row(self, kern):
        hops = [0, 1, 2, 3]
        row = kern.comm_cost_row(hops, [0, 1, 2, 3], lambda h: 2 * h + 1, 4)
        assert row == [1, 3, 5, 7]

    def test_dead_pes_stay_none(self, kern):
        hops = [0, 5, 2, 9]
        row = kern.comm_cost_row(hops, [0, 2], lambda h: h * h, 4)
        assert row == [0, None, 4, None]

    def test_cost_of_called_once_per_hop_count(self, kern):
        calls = []

        def cost_of(h):
            calls.append(h)
            return h + 10

        hops = [3, 1, 3, 1, 3, 2]
        row = kern.comm_cost_row(hops, list(range(6)), cost_of, 6)
        assert row == [13, 11, 13, 11, 13, 12]
        assert sorted(calls) == [1, 2, 3]

    def test_empty_alive(self, kern):
        assert kern.comm_cost_row([1, 2], [], lambda h: h, 2) == [None, None]


class TestEdgeBounds:
    def test_delayed_edges_ceil_division(self, kern):
        # slack 7 over delay 2 -> ceil(3.5) = 4; negative slack floors
        bounds, bad = kern.edge_bounds([10, 0], [2, 0], [6, 30], [2, 3])
        assert bad is None
        assert bounds == [4, -9]

    def test_zero_delay_satisfied(self, kern):
        bounds, bad = kern.edge_bounds([3], [1], [5], [0])
        assert (bounds, bad) == ([0], None)

    def test_zero_delay_violation_short_circuits(self, kern):
        bounds, bad = kern.edge_bounds(
            [0, 9, 9], [0, 0, 0], [5, 5, 5], [1, 0, 0]
        )
        assert bounds == [] and bad == 1

    def test_empty(self, kern):
        assert kern.edge_bounds([], [], [], []) == ([], None)


class TestFolds:
    def test_fold_max(self, kern):
        rows = [([1, 5, 2], 3), ([4, 0, 0], 1)]
        assert kern.fold_max(rows, [0, 1, 2], 2) == [5, 8, 5]

    def test_fold_max_empty_rows_gives_base(self, kern):
        assert kern.fold_max([], [0, 1], 7) == [7, 7]

    def test_fold_min(self, kern):
        rows = [([1, 5, 2], 3), ([4, 0, 0], 10)]
        assert kern.fold_min(rows, [0, 1, 2]) == [2, -2, 1]

    def test_fold_subset_of_pes(self, kern):
        rows = [([9, 1, 9, 1], 0)]
        assert kern.fold_max(rows, [1, 3], 0) == [1, 1]
        assert kern.fold_min(rows, [3, 1]) == [-1, -1]

    def test_degraded_rows_with_none(self, kern):
        # dead PE 1 holds None and is excluded from the gather — the
        # numpy backend must fall back without changing the answer
        rows = [([4, None, 2], 5), ([0, None, 7], 0)]
        assert kern.fold_max(rows, [0, 2], 1) == [9, 7]
        assert kern.fold_min(rows, [0, 2]) == [0, -7]


@pytest.mark.skipif(np_kernels is None, reason="numpy unavailable")
class TestBackendsAgree:
    def test_randomised_equality_sweep(self):
        rng = random.Random(1234)
        for trial in range(200):
            n = rng.randint(1, 40)
            pes = sorted(rng.sample(range(n), rng.randint(1, n)))
            hops = [rng.randint(0, 12) for _ in range(n)]
            factor = rng.randint(1, 9)
            a = py_kernels.comm_cost_row(
                hops, pes, lambda h: factor * h + 1, n
            )
            b = np_kernels.comm_cost_row(
                hops, pes, lambda h: factor * h + 1, n
            )
            assert a == b, trial

            k = rng.randint(0, 20)
            f = [rng.randint(-50, 50) for _ in range(k)]
            m = [rng.randint(0, 20) for _ in range(k)]
            s = [rng.randint(-50, 50) for _ in range(k)]
            d = [rng.choice([0, 1, 1, 2, 3, 7]) for _ in range(k)]
            assert py_kernels.edge_bounds(f, m, s, d) == \
                np_kernels.edge_bounds(f, m, s, d), trial

            rows = [
                (
                    [rng.randint(-30, 30) for _ in range(n)],
                    rng.randint(-10, 10),
                )
                for _ in range(rng.randint(1, 5))
            ]
            base = rng.randint(-5, 5)
            assert py_kernels.fold_max(rows, pes, base) == \
                np_kernels.fold_max(rows, pes, base), trial
            assert py_kernels.fold_min(rows, pes) == \
                np_kernels.fold_min(rows, pes), trial

    def test_large_arrays_agree(self):
        rng = random.Random(7)
        n = 4096
        pes = list(range(n))
        hops = [rng.randint(0, 64) for _ in range(n)]
        assert py_kernels.comm_cost_row(hops, pes, lambda h: 3 * h, n) == \
            np_kernels.comm_cost_row(hops, pes, lambda h: 3 * h, n)
        f = [rng.randint(0, 10**6) for _ in range(n)]
        m = [rng.randint(0, 10**3) for _ in range(n)]
        s = [rng.randint(0, 10**6) for _ in range(n)]
        d = [rng.randint(1, 9) for _ in range(n)]
        assert py_kernels.edge_bounds(f, m, s, d) == \
            np_kernels.edge_bounds(f, m, s, d)


_COUNTER_SCRIPT = """
import json, sys
from repro.arch import make_architecture
from repro.core import CycloConfig, cyclo_compact
from repro.obs import metrics as metrics_mod
from repro.obs.metrics import REGISTRY
from repro.workloads import make_workload

metrics_mod.reset()
graph = make_workload("figure7")
arch = make_architecture("mesh", 8)
result = cyclo_compact(
    graph, arch, config=CycloConfig(max_iterations=30)
)
snap = REGISTRY.snapshot()["counters"]
json.dump(
    {
        "backend": __import__("repro.core.kernels", fromlist=["BACKEND"]).BACKEND,
        "final_length": result.final_length,
        "stop_reason": result.stop_reason,
        "counters": snap,
    },
    sys.stdout,
)
"""


@pytest.mark.skipif(np_kernels is None, reason="numpy unavailable")
def test_full_run_publishes_identical_counters_either_backend():
    """The batching is an implementation detail: a full compaction run
    must publish the same result *and the same obs counters* whichever
    backend REPRO_KERNELS selects (fresh interpreters, since the
    backend binds at import time)."""
    outs = {}
    for backend in BACKENDS:
        proc = subprocess.run(
            [sys.executable, "-c", _COUNTER_SCRIPT],
            capture_output=True,
            text=True,
            env={
                "PYTHONPATH": str(REPO_SRC),
                "REPRO_KERNELS": backend,
                "PATH": "/usr/bin:/bin",
            },
            check=True,
        )
        outs[backend] = json.loads(proc.stdout)
    py, np_ = outs["python"], outs["numpy"]
    assert py["backend"] == "python" and np_["backend"] == "numpy"
    assert py["final_length"] == np_["final_length"]
    assert py["stop_reason"] == np_["stop_reason"]
    assert py["counters"] == np_["counters"]


def test_active_backend_matches_availability():
    assert BACKEND in BACKENDS
    if np_kernels is None:
        assert BACKEND == "python"
    else:
        assert py_kernels.name == "python" and np_kernels.name == "numpy"
