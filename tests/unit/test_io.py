"""Unit tests for CSDFG serialization."""

import pytest

from repro.errors import GraphError
from repro.graph import (
    from_edge_list,
    from_json,
    load_json,
    save_json,
    to_dot,
    to_edge_list,
    to_json,
)


class TestJson:
    def test_round_trip(self, figure1):
        assert from_json(to_json(figure1)).structurally_equal(figure1)

    def test_file_round_trip(self, figure7, tmp_path):
        path = tmp_path / "g.json"
        save_json(figure7, path)
        assert load_json(path).structurally_equal(figure7)

    def test_rejects_foreign_payload(self):
        with pytest.raises(GraphError):
            from_json({"format": "something-else"})

    def test_rejects_unknown_version(self, figure1):
        payload = to_json(figure1)
        payload["version"] = 99
        with pytest.raises(GraphError, match="version"):
            from_json(payload)

    def test_payload_shape(self, figure1):
        payload = to_json(figure1)
        assert payload["format"] == "repro-csdfg"
        assert len(payload["nodes"]) == 6
        assert len(payload["edges"]) == 10


class TestDot:
    def test_contains_nodes_and_edges(self, figure1):
        dot = to_dot(figure1)
        assert '"A" [label="A (1)"]' in dot
        assert '"B" [label="B (2)"]' in dot
        assert '"D" -> "A"' in dot

    def test_delayed_edges_dashed(self, figure1):
        dot = to_dot(figure1)
        delayed = [l for l in dot.splitlines() if '"D" -> "A"' in l]
        assert "dashed" in delayed[0]


class TestEdgeList:
    def test_round_trip(self, figure1):
        text = to_edge_list(figure1)
        assert from_edge_list(text).structurally_equal(figure1)

    def test_implicit_nodes(self):
        g = from_edge_list("a -> b delay=1 volume=2\n")
        assert g.time("a") == 1
        assert g.delay("a", "b") == 1
        assert g.volume("a", "b") == 2

    def test_comments_and_blanks(self):
        g = from_edge_list("# header\n\nnode a 2  # trailing\na -> a delay=1\n")
        assert g.time("a") == 2

    def test_parse_error_reports_line(self):
        with pytest.raises(GraphError, match="line 2"):
            from_edge_list("node a 1\nthis is not parseable\n")
