"""Unit tests for reproducer-case serialization and replay."""

import pytest

from repro.core import CycloConfig
from repro.errors import QAError
from repro.qa import ArchSpec, ReproCase, load_cases, replay_case, sample_graph

CFG = CycloConfig(max_iterations=2, validate_each_step=False)


def _case(prop="schedules-legal", seed=3):
    return ReproCase(
        graph=sample_graph(seed),
        arch_spec=ArchSpec("ring", 3),
        config=CFG,
        prop=prop,
        seed=seed,
        note="unit test",
    )


class TestRoundTrip:
    def test_json_roundtrip_replays_identically(self):
        case = _case()
        again = ReproCase.from_json(case.to_json())
        assert again.prop == case.prop
        assert again.seed == case.seed
        assert again.arch_spec == case.arch_spec
        assert again.config == case.config
        assert again.graph.structurally_equal(case.graph)
        assert replay_case(again) == replay_case(case) == []

    def test_save_and_load_cases(self, tmp_path):
        for i in range(3):
            _case(seed=i).save(tmp_path / f"case-{i}.json")
        (tmp_path / "notes.txt").write_text("ignored")
        cases = load_cases(tmp_path)
        assert [p.name for p, _ in cases] == [
            "case-0.json", "case-1.json", "case-2.json"
        ]
        assert all(replay_case(c) == [] for _, c in cases)

    def test_load_cases_missing_directory_is_empty(self, tmp_path):
        assert load_cases(tmp_path / "nope") == []


class TestValidation:
    def test_unknown_property_rejected_at_construction(self):
        with pytest.raises(QAError, match="unknown property"):
            _case(prop="not-a-property")

    def test_not_json_rejected(self):
        with pytest.raises(QAError, match="not valid JSON"):
            ReproCase.from_json("{")

    def test_wrong_format_rejected(self):
        with pytest.raises(QAError, match="repro-qa-case"):
            ReproCase.from_json('{"format": "something-else"}')

    def test_wrong_version_rejected(self):
        with pytest.raises(QAError, match="version"):
            ReproCase.from_json(
                '{"format": "repro-qa-case", "version": 999}'
            )


class TestReplayTotality:
    def test_exceptions_become_violations(self, monkeypatch):
        case = _case()
        monkeypatch.setattr(
            type(case), "run",
            lambda self: (_ for _ in ()).throw(RuntimeError("boom")),
        )
        violations = replay_case(case)
        assert violations == ["[schedules-legal] raised RuntimeError: boom"]

    def test_describe_mentions_everything(self):
        case = _case()
        text = case.describe()
        assert "schedules-legal" in text
        assert "ring" in text and "unit test" in text
