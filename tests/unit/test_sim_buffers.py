"""Unit tests for edge buffer analysis."""

from repro.arch import CompletelyConnected, LinearArray
from repro.core import cyclo_compact, start_up_schedule
from repro.graph import CSDFG
from repro.schedule import ScheduleTable
from repro.sim import buffer_requirements, simulate


def two_node(delay, volume=1):
    g = CSDFG("g")
    g.add_node("u", 1)
    g.add_node("v", 1)
    g.add_edge("u", "v", delay, volume)
    g.add_edge("v", "u", max(1, 3 - delay), 1)
    return g


class TestBufferSizing:
    def test_zero_delay_local_edge_single_token(self):
        g = two_node(0)
        arch = CompletelyConnected(2)
        s = ScheduleTable(2)
        s.place("u", 0, 1, 1)
        s.place("v", 0, 2, 1)
        report = buffer_requirements(g, arch, s, iterations=6)
        assert report.per_edge[("u", "v")] == 1

    def test_delayed_edge_holds_initial_tokens(self):
        g = two_node(2)
        arch = CompletelyConnected(2)
        s = ScheduleTable(2)
        s.place("u", 0, 1, 1)
        s.place("v", 0, 2, 1)
        report = buffer_requirements(g, arch, s, iterations=8)
        # two preloaded tokens plus the in-flight one
        assert report.per_edge[("u", "v")] >= 2

    def test_totals_weighted_by_volume(self):
        g = two_node(1, volume=4)
        arch = CompletelyConnected(2)
        s = ScheduleTable(2)
        s.place("u", 0, 1, 1)
        s.place("v", 1, 1, 1)
        s.set_length(6)
        report = buffer_requirements(g, arch, s, iterations=8)
        uv = report.per_edge[("u", "v")]
        vu = report.per_edge[("v", "u")]
        assert report.total_tokens == uv + vu
        assert report.total_words == uv * 4 + vu * 1

    def test_reuses_existing_simulation(self, figure1, mesh2x2):
        s = start_up_schedule(figure1, mesh2x2)
        sim = simulate(figure1, mesh2x2, s, iterations=6, check=False)
        r1 = buffer_requirements(figure1, mesh2x2, s, result=sim)
        r2 = buffer_requirements(figure1, mesh2x2, s, iterations=6)
        assert r1.per_edge == r2.per_edge

    def test_compaction_may_need_more_buffering(self, figure1, mesh2x2):
        # pipelining overlaps iterations: buffers never shrink below the
        # sequential schedule's needs
        startup = start_up_schedule(figure1, mesh2x2)
        before = buffer_requirements(figure1, mesh2x2, startup, iterations=8)
        result = cyclo_compact(figure1, mesh2x2)
        after = buffer_requirements(
            result.graph, mesh2x2, result.schedule, iterations=8
        )
        assert after.total_tokens >= 1
        assert before.total_tokens >= 1

    def test_every_edge_reported(self, figure7):
        arch = LinearArray(8)
        s = start_up_schedule(figure7, arch)
        report = buffer_requirements(figure7, arch, s, iterations=5)
        assert set(report.per_edge) == {e.key for e in figure7.edges()}
