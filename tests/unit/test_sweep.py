"""Unit tests for the parameter-sweep drivers."""

import math

from repro.analysis import pe_count_sweep, slowdown_sweep, volume_sweep
from repro.core import CycloConfig
from repro.workloads import figure7_csdfg, lattice_filter

FAST = CycloConfig(max_iterations=15, validate_each_step=False)


class TestPeCountSweep:
    def test_points_and_bound(self, figure7):
        points = pe_count_sweep(
            figure7, "complete", [2, 4, 8], config=FAST
        )
        assert [p.x for p in points] == [2, 4, 8]
        for p in points:
            assert p.after <= p.init
            assert p.after >= math.ceil(p.bound)

    def test_more_pes_help_in_aggregate(self, figure7):
        points = pe_count_sweep(figure7, "complete", [1, 8], config=FAST)
        assert points[-1].after <= points[0].after


class TestVolumeSweep:
    def test_heavier_comm_never_helps_in_aggregate(self):
        graph = lattice_filter(6)
        points = volume_sweep(graph, "linear", 8, [1, 4], config=FAST)
        assert points[1].after >= points[0].after - 1  # heuristic slack

    def test_bound_volume_invariant(self):
        graph = lattice_filter(4)
        points = volume_sweep(graph, "mesh", 4, [1, 3], config=FAST)
        assert points[0].bound == points[1].bound  # volumes don't move it


class TestSlowdownSweep:
    def test_bound_divides(self, figure7):
        points = slowdown_sweep(figure7, "complete", 8, [1, 2], config=FAST)
        assert points[1].bound == points[0].bound / 2

    def test_improvement_tracked(self, figure7):
        points = slowdown_sweep(figure7, "mesh", 8, [1], config=FAST)
        assert points[0].improvement == points[0].init - points[0].after
