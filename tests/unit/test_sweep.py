"""Unit tests for the parameter-sweep drivers."""

import math

from repro.analysis import pe_count_sweep, slowdown_sweep, volume_sweep
from repro.core import CycloConfig
from repro.workloads import figure7_csdfg, lattice_filter

FAST = CycloConfig(max_iterations=15, validate_each_step=False)


class TestPeCountSweep:
    def test_points_and_bound(self, figure7):
        points = pe_count_sweep(
            figure7, "complete", [2, 4, 8], config=FAST
        )
        assert [p.x for p in points] == [2, 4, 8]
        for p in points:
            assert p.after <= p.init
            assert p.after >= math.ceil(p.bound)

    def test_more_pes_help_in_aggregate(self, figure7):
        points = pe_count_sweep(figure7, "complete", [1, 8], config=FAST)
        assert points[-1].after <= points[0].after


class TestVolumeSweep:
    def test_heavier_comm_never_helps_in_aggregate(self):
        graph = lattice_filter(6)
        points = volume_sweep(graph, "linear", 8, [1, 4], config=FAST)
        assert points[1].after >= points[0].after - 1  # heuristic slack

    def test_bound_volume_invariant(self):
        graph = lattice_filter(4)
        points = volume_sweep(graph, "mesh", 4, [1, 3], config=FAST)
        assert points[0].bound == points[1].bound  # volumes don't move it


class TestSlowdownSweep:
    def test_bound_divides(self, figure7):
        points = slowdown_sweep(figure7, "complete", 8, [1, 2], config=FAST)
        assert points[1].bound == points[0].bound / 2

    def test_improvement_tracked(self, figure7):
        points = slowdown_sweep(figure7, "mesh", 8, [1], config=FAST)
        assert points[0].improvement == points[0].init - points[0].after


class TestParallelDeterminism:
    """Regression guard: ``jobs > 1`` must return byte-identical points
    in item order (SweepPoint is a frozen comparable dataclass, so
    ``==`` covers x/init/after/bound)."""

    def test_pe_sweep_jobs2_matches_serial_in_order(self, figure7):
        values = [2, 4, 8]
        serial = pe_count_sweep(figure7, "complete", values, config=FAST)
        parallel = pe_count_sweep(
            figure7, "complete", values, config=FAST, jobs=2
        )
        assert parallel == serial
        assert [p.x for p in parallel] == values  # item order, not finish order

    def test_volume_sweep_jobs2_matches_serial_in_order(self):
        graph = lattice_filter(4)
        values = [1, 2, 4]
        serial = volume_sweep(graph, "mesh", 4, values, config=FAST)
        parallel = volume_sweep(graph, "mesh", 4, values, config=FAST, jobs=2)
        assert parallel == serial
        assert [p.x for p in parallel] == values

    def test_slowdown_sweep_jobs2_matches_serial_in_order(self, figure7):
        values = [1, 2]
        serial = slowdown_sweep(figure7, "linear", 4, values, config=FAST)
        parallel = slowdown_sweep(
            figure7, "linear", 4, values, config=FAST, jobs=2
        )
        assert parallel == serial
        assert [p.x for p in parallel] == values

    def test_worker_metrics_merge_back(self, figure7):
        from repro.obs import InMemorySink, install_sink, metrics, remove_sink

        sink = InMemorySink()
        install_sink(sink)  # metrics are no-ops without a sink
        try:
            metrics.reset()
            pe_count_sweep(figure7, "complete", [2, 4], config=FAST, jobs=2)
            counters = metrics.snapshot()["counters"]
        finally:
            remove_sink(sink)
        # the optimiser's own counters ran in the workers, not here;
        # run_parallel must have merged their snapshots home
        assert any(v > 0 for v in counters.values()), counters

    def test_merged_worker_latency_metrics_deterministic(self, figure7):
        from repro.obs import InMemorySink, install_sink, metrics, remove_sink

        def _snapshot_once():
            sink = InMemorySink()
            install_sink(sink)
            try:
                metrics.reset()
                pe_count_sweep(
                    figure7, "complete", [2, 4], config=FAST, jobs=2
                )
                return metrics.snapshot()
            finally:
                remove_sink(sink)
                metrics.reset()

        first = _snapshot_once()
        second = _snapshot_once()
        for snap in (first, second):
            hists = snap["histograms"]
            assert snap["counters"]["perf.parallel.tasks"] == 2
            for name in (
                "perf.parallel.queue_wait_seconds",
                "perf.parallel.task_seconds",
            ):
                h = hists[name]
                assert h["count"] == 2  # one per sweep point
                assert h["p50"] is not None and h["p95"] is not None
                assert h["min"] <= h["p50"] <= h["p95"] <= h["max"]
        # determinism: the merged metric *names and counts* are stable
        # across runs (durations themselves are wall-clock)
        assert sorted(first["histograms"]) == sorted(second["histograms"])
        assert sorted(first["counters"]) == sorted(second["counters"])
        assert (
            first["counters"]["perf.parallel.tasks"]
            == second["counters"]["perf.parallel.tasks"]
        )
