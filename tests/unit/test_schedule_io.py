"""Unit tests for schedule serialization."""

import pytest

from repro.core import CycloConfig, cyclo_compact, start_up_schedule
from repro.errors import ScheduleError
from repro.schedule import (
    ScheduleTable,
    load_schedule,
    save_schedule,
    schedule_from_json,
    schedule_to_json,
)


class TestJsonRoundTrip:
    def test_startup_schedule(self, figure1, mesh2x2):
        s = start_up_schedule(figure1, mesh2x2)
        back = schedule_from_json(schedule_to_json(s))
        assert back.same_placements(s)
        assert back.length == s.length

    def test_file_round_trip(self, figure7, tmp_path):
        from repro.arch import Mesh2D

        arch = Mesh2D(2, 4)
        cfg = CycloConfig(max_iterations=10, validate_each_step=False)
        result = cyclo_compact(figure7, arch, config=cfg)
        path = tmp_path / "sched.json"
        save_schedule(result.schedule, path)
        loaded = load_schedule(path)
        assert loaded.same_placements(result.schedule)

    def test_occupancy_preserved(self, tmp_path):
        t = ScheduleTable(2, name="piped")
        t.place("a", 0, 1, 3, occupancy=1)
        t.place("b", 0, 2, 3, occupancy=1)
        path = tmp_path / "p.json"
        save_schedule(t, path)
        loaded = load_schedule(path)
        assert loaded.placement("a").occupancy == 1
        assert loaded.placement("b").finish == 4

    def test_padding_preserved(self, figure1, mesh2x2):
        s = start_up_schedule(figure1, mesh2x2)
        s.set_length(s.length + 3)
        back = schedule_from_json(schedule_to_json(s))
        assert back.length == s.length

    def test_rejects_foreign_payload(self):
        with pytest.raises(ScheduleError):
            schedule_from_json({"format": "other"})

    def test_rejects_bad_version(self, figure1, mesh2x2):
        payload = schedule_to_json(start_up_schedule(figure1, mesh2x2))
        payload["version"] = 42
        with pytest.raises(ScheduleError, match="version"):
            schedule_from_json(payload)

    def test_placements_sorted_deterministically(self, figure1, mesh2x2):
        s = start_up_schedule(figure1, mesh2x2)
        p1 = schedule_to_json(s)
        p2 = schedule_to_json(s.copy())
        assert p1 == p2
