"""Unit tests for custom architectures and their serialization."""

import pytest

from repro.arch import (
    ConstantLatencyModel,
    CustomArchitecture,
    WormholeModel,
    from_adjacency,
    load_architecture,
    make_architecture,
    paper_architectures,
    save_architecture,
)
from repro.errors import ArchitectureError


class TestCustom:
    def test_from_adjacency(self):
        arch = from_adjacency({0: [1, 2], 1: [2]}, name="tri")
        assert arch.num_pes == 3
        assert arch.diameter == 1

    def test_one_directional_adjacency_symmetrised(self):
        arch = from_adjacency({0: [1], 1: [2]})
        assert arch.hops(2, 0) == 2

    def test_empty_rejected(self):
        with pytest.raises(ArchitectureError):
            from_adjacency({})


class TestSerialization:
    def test_round_trip(self, tmp_path):
        arch = CustomArchitecture(4, [(0, 1), (1, 2), (2, 3), (3, 0)], name="sq")
        path = tmp_path / "arch.json"
        save_architecture(arch, path)
        loaded = load_architecture(path)
        assert loaded.num_pes == 4
        assert loaded.links == arch.links
        assert loaded.name == "sq"
        assert loaded.comm_model.name == "store-and-forward"

    def test_constant_latency_round_trip(self, tmp_path):
        arch = CustomArchitecture(
            2, [(0, 1)], comm_model=ConstantLatencyModel(5)
        )
        path = tmp_path / "arch.json"
        save_architecture(arch, path)
        loaded = load_architecture(path)
        assert loaded.comm_cost(0, 1, 100) == 5

    def test_wormhole_round_trip(self, tmp_path):
        arch = CustomArchitecture(2, [(0, 1)], comm_model=WormholeModel())
        path = tmp_path / "a.json"
        save_architecture(arch, path)
        assert load_architecture(path).comm_model.name == "wormhole"

    def test_rejects_foreign_file(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text('{"format": "other"}')
        with pytest.raises(ArchitectureError):
            load_architecture(path)


class TestRegistry:
    def test_known_kinds(self):
        assert make_architecture("linear", 5).num_pes == 5
        assert make_architecture("ring", 6).num_pes == 6
        assert make_architecture("complete", 4).diameter == 1
        assert make_architecture("star", 5).num_pes == 5

    def test_mesh_most_square(self):
        mesh = make_architecture("mesh", 8)
        assert {mesh.rows, mesh.cols} == {2, 4}
        square = make_architecture("mesh", 16)
        assert square.rows == square.cols == 4

    def test_hypercube_power_of_two(self):
        assert make_architecture("hypercube", 8).diameter == 3
        with pytest.raises(ArchitectureError):
            make_architecture("hypercube", 6)

    def test_tree_needs_full_size(self):
        assert make_architecture("tree", 7).num_pes == 7
        with pytest.raises(ArchitectureError):
            make_architecture("tree", 8)

    def test_unknown_kind(self):
        with pytest.raises(ArchitectureError, match="unknown architecture"):
            make_architecture("quantum", 4)

    def test_paper_set(self):
        archs = paper_architectures(8)
        assert set(archs) == {"com", "lin", "rin", "2-d", "hyp"}
        assert all(a.num_pes == 8 for a in archs.values())
        assert archs["com"].diameter == 1
        assert archs["lin"].diameter == 7
        assert archs["rin"].diameter == 4
        assert archs["2-d"].diameter == 4  # 2x4 mesh
        assert archs["hyp"].diameter == 3
