"""Unit tests for prologue/epilogue extraction."""

import pytest

from repro.errors import RetimingError
from repro.retiming import Instance, build_loop_code


class TestLoopCode:
    def test_zero_retiming_no_prologue(self, figure1):
        code = build_loop_code(figure1, {}, 10)
        assert code.prologue == ()
        assert code.epilogue == ()
        assert code.steady_iterations == 10

    def test_single_retimed_node(self, figure1):
        code = build_loop_code(figure1, {"A": 1}, 10)
        assert code.prologue == (Instance("A", 0),)
        assert code.steady_iterations == 9
        # every other node finishes one trailing instance
        trailing = {inst.node for inst in code.epilogue}
        assert trailing == {"B", "C", "D", "E", "F"}
        assert all(inst.iteration == 9 for inst in code.epilogue)

    def test_total_instances_invariant(self, figure7):
        retiming = {v: i % 3 for i, v in enumerate(figure7.nodes())}
        n = 12
        code = build_loop_code(figure7, retiming, n)
        assert code.total_instances(figure7) == n * figure7.num_nodes

    def test_instance_coverage_exact(self, figure1):
        n = 6
        code = build_loop_code(figure1, {"A": 2, "B": 1}, n)
        executed: dict = {}
        for inst in code.prologue:
            executed.setdefault(inst.node, set()).add(inst.iteration)
        r = code.retiming
        for i in range(code.steady_iterations):
            for v in figure1.nodes():
                executed.setdefault(v, set()).add(i + r[v])
        for inst in code.epilogue:
            executed.setdefault(inst.node, set()).add(inst.iteration)
        for v in figure1.nodes():
            assert executed[v] == set(range(n)), f"node {v} coverage"

    def test_negative_retimings_normalised(self, figure1):
        code = build_loop_code(figure1, {"B": -1}, 5)
        assert min(code.retiming.values()) == 0

    def test_prologue_respects_topology(self, figure1):
        code = build_loop_code(figure1, {"A": 2, "B": 1}, 8)
        first_iter = [i.node for i in code.prologue if i.iteration == 0]
        assert first_iter.index("A") < first_iter.index("B")

    def test_too_few_iterations(self, figure1):
        with pytest.raises(RetimingError):
            build_loop_code(figure1, {"A": 5}, 3)

    def test_negative_iterations(self, figure1):
        with pytest.raises(RetimingError):
            build_loop_code(figure1, {}, -1)
