"""Unit tests for routing paths."""

import pytest

from repro.arch import (
    Hypercube,
    LinearArray,
    Mesh2D,
    Ring,
    ecube_route,
    route,
    shortest_path,
    xy_route,
)


def assert_valid_path(arch, path, src, dst):
    assert path[0] == src and path[-1] == dst
    for a, b in zip(path, path[1:]):
        assert arch.hops(a, b) == 1, f"{a}->{b} not a link"


class TestShortestPath:
    def test_length_matches_hops(self):
        arch = Ring(8)
        for src in range(8):
            for dst in range(8):
                path = shortest_path(arch, src, dst)
                assert len(path) - 1 == arch.hops(src, dst)
                assert_valid_path(arch, path, src, dst)

    def test_trivial(self):
        arch = LinearArray(3)
        assert shortest_path(arch, 1, 1) == [1]


class TestXYRoute:
    def test_matches_manhattan(self):
        mesh = Mesh2D(3, 4)
        for src in mesh.processors:
            for dst in mesh.processors:
                path = xy_route(mesh, src, dst)
                assert len(path) - 1 == mesh.hops(src, dst)
                assert_valid_path(mesh, path, src, dst)

    def test_column_first(self):
        mesh = Mesh2D(2, 2)
        # 0 -> 3: move along the row (column dimension) first
        assert xy_route(mesh, 0, 3) == [0, 1, 3]


class TestEcubeRoute:
    def test_matches_hamming(self):
        cube = Hypercube(4)
        for src in (0, 5, 9, 15):
            for dst in cube.processors:
                path = ecube_route(cube, src, dst)
                assert len(path) - 1 == cube.hops(src, dst)
                assert_valid_path(cube, path, src, dst)

    def test_lsb_first(self):
        cube = Hypercube(3)
        assert ecube_route(cube, 0, 3) == [0, 1, 3]


class TestDispatch:
    def test_route_picks_specialised(self):
        mesh = Mesh2D(2, 3)
        cube = Hypercube(3)
        ring = Ring(5)
        assert route(mesh, 0, 5) == xy_route(mesh, 0, 5)
        assert route(cube, 1, 6) == ecube_route(cube, 1, 6)
        assert len(route(ring, 0, 2)) - 1 == ring.hops(0, 2)
