"""Unit tests for the qa samplers: legality, determinism, coverage."""

import pytest

from repro.arch import ARCHITECTURE_KINDS
from repro.errors import QAError
from repro.graph.validation import is_legal
from repro.qa import (
    GRAPH_FAMILIES,
    SIZED_FAMILIES,
    ArchSpec,
    GraphProfile,
    sample_arch_spec,
    sample_config,
    sample_graph,
    sample_sized_graph,
)


class TestSampleGraph:
    def test_every_sample_is_paper_legal(self):
        for seed in range(200):
            graph = sample_graph(seed)
            assert is_legal(graph), f"seed {seed} produced {graph.name!r}"
            assert all(graph.time(v) >= 1 for v in graph.nodes())
            assert all(e.volume >= 1 for e in graph.edges())

    def test_deterministic_per_seed(self):
        for seed in (0, 17, 999):
            a = sample_graph(seed)
            b = sample_graph(seed)
            assert a.name == b.name
            assert sorted(map(str, a.nodes())) == sorted(map(str, b.nodes()))
            assert [
                (str(e.src), str(e.dst), e.delay, e.volume) for e in a.edges()
            ] == [
                (str(e.src), str(e.dst), e.delay, e.volume) for e in b.edges()
            ]

    def test_profile_bounds_respected(self):
        prof = GraphProfile(min_nodes=3, max_nodes=5, max_time=2)
        for seed in range(60):
            graph = sample_graph(seed, prof)
            assert 2 <= graph.num_nodes <= 7  # families round sizes a little
            assert all(graph.time(v) <= 2 for v in graph.nodes())

    def test_all_families_reachable(self):
        prefixes = {
            "rand": "random",
            "layers": "layered",
            "ring": "ring",
            "chain": "chain",
            "forkjoin": "fork-join",
        }
        seen = set()
        for seed in range(300):
            name = sample_graph(seed).name
            for prefix, family in prefixes.items():
                if name.startswith(prefix):
                    seen.add(family)
        assert seen == set(GRAPH_FAMILIES)

    def test_bad_profile_raises(self):
        with pytest.raises(QAError):
            GraphProfile(min_nodes=5, max_nodes=2)
        with pytest.raises(QAError):
            GraphProfile(families=("random", "nope"))


class TestSampleArchSpec:
    def test_all_eight_kinds_sampled_and_buildable(self):
        seen = set()
        for seed in range(300):
            spec = sample_arch_spec(seed)
            seen.add(spec.kind)
            arch = spec.build()
            assert arch.num_pes == spec.num_pes
        assert seen == set(ARCHITECTURE_KINDS)

    def test_max_pes_respected_when_possible(self):
        for seed in range(100):
            spec = sample_arch_spec(seed, max_pes=4)
            if spec.kind not in ("torus", "tree"):  # floors above 4: 9 / 3
                assert spec.num_pes <= 4, spec

    def test_degraded_sampling_still_builds(self):
        degraded = 0
        for seed in range(120):
            spec = sample_arch_spec(seed, degraded_prob=0.5)
            arch = spec.build()
            if spec.failed_pes:
                degraded += 1
                assert arch.num_alive == spec.num_pes - len(spec.failed_pes)
        assert degraded > 0

    def test_spec_roundtrip(self):
        spec = ArchSpec("mesh", 9, failed_pes=(4,), failed_links=((0, 1),))
        again = ArchSpec.from_dict(spec.to_dict())
        assert again == spec

    def test_malformed_spec_raises(self):
        with pytest.raises(QAError):
            ArchSpec.from_dict({"kind": "mesh"})  # num_pes missing


class TestSampleSizedGraph:
    @pytest.mark.parametrize("family", SIZED_FAMILIES)
    def test_exact_node_count_and_legality(self, family):
        for size in (3, 17, 250):
            graph = sample_sized_graph(family, size, seed=2)
            assert graph.num_nodes == size, (family, size)
            assert is_legal(graph)

    @pytest.mark.parametrize("family", SIZED_FAMILIES)
    def test_byte_stable_per_key(self, family):
        a = sample_sized_graph(family, 120, seed=9)
        b = sample_sized_graph(family, 120, seed=9)
        assert a.name == b.name
        assert [
            (str(e.src), str(e.dst), e.delay, e.volume) for e in a.edges()
        ] == [
            (str(e.src), str(e.dst), e.delay, e.volume) for e in b.edges()
        ]

    def test_seed_changes_the_instance(self):
        a = sample_sized_graph("layered", 120, seed=0)
        b = sample_sized_graph("layered", 120, seed=1)
        assert a.name != b.name

    def test_unknown_family_raises(self):
        with pytest.raises(QAError):
            sample_sized_graph("random", 100)

    def test_too_small_raises(self):
        with pytest.raises(QAError):
            sample_sized_graph("ring", 2)


class TestSampleConfig:
    def test_deterministic_and_varied(self):
        cfgs = [sample_config(seed) for seed in range(80)]
        again = [sample_config(seed) for seed in range(80)]
        assert cfgs == again
        assert {c.relaxation for c in cfgs} == {True, False}
        assert {c.pipelined_pes for c in cfgs} == {True, False}
        assert {c.remap_strategy for c in cfgs} == {"implied", "first-fit"}
        assert all(not c.validate_each_step for c in cfgs)
