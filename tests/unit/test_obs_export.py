"""Unit tests for the exporters and the phase-breakdown profiler."""

import json

from repro.arch import CompletelyConnected
from repro.graph import CSDFG
from repro.obs import (
    InMemorySink,
    chrome_trace_events,
    format_breakdown,
    metrics,
    metrics_report,
    phase_breakdown,
    sink_installed,
    span,
    write_chrome_trace,
)
from repro.schedule import ScheduleTable
from repro.sim import simulate


def _record_optimiser_like_spans():
    sink = InMemorySink()
    with sink_installed(sink):
        with span("cyclo_compact"):
            with span("startup"):
                pass
            for i in range(2):
                with span("pass", index=i + 1):
                    with span("rotate"):
                        pass
                    with span("remap") as sp:
                        sp.add(nodes=2)
                    with span("validate"):
                        pass
    return sink


def _tiny_sim():
    g = CSDFG("tiny")
    g.add_node("a", 1)
    g.add_node("b", 1)
    g.add_edge("a", "b", 0, 1)
    g.add_edge("b", "a", 1, 1)
    arch = CompletelyConnected(2)
    s = ScheduleTable(2)
    s.place("a", 0, 1, 1)
    s.place("b", 1, 3, 1)
    s.set_length(4)
    return simulate(g, arch, s, 3)


class TestChromeTraceSchema:
    def test_every_event_has_required_keys(self):
        sink = _record_optimiser_like_spans()
        events = chrome_trace_events(sink.events, sim=_tiny_sim())
        assert events
        for e in events:
            assert {"ph", "ts", "pid", "tid"} <= set(e)

    def test_span_events_are_complete_events(self):
        sink = _record_optimiser_like_spans()
        events = chrome_trace_events(sink.events)
        slices = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in slices} == {
            "cyclo_compact", "startup", "pass", "rotate", "remap", "validate",
        }
        for e in slices:
            assert e["pid"] == 1
            assert e["ts"] >= 0
            assert e["dur"] >= 0

    def test_timestamps_rebased_to_zero(self):
        sink = _record_optimiser_like_spans()
        events = chrome_trace_events(sink.events)
        slices = [e for e in events if e["ph"] == "X"]
        assert min(e["ts"] for e in slices) == 0

    def test_simulation_tracks(self):
        events = chrome_trace_events([], sim=_tiny_sim())
        task_slices = [
            e for e in events if e["ph"] == "X" and e["pid"] == 2
        ]
        assert len(task_slices) == 6  # 2 nodes x 3 iterations
        assert {e["tid"] for e in task_slices} == {1, 2}  # one per PE
        message_slices = [
            e for e in events if e["ph"] == "X" and e["pid"] == 3
        ]
        assert message_slices  # a->b crosses PEs
        thread_names = [
            e["args"]["name"] for e in events if e["ph"] == "M"
        ]
        assert "pe1" in thread_names
        assert any("->" in name for name in thread_names)

    def test_write_chrome_trace_round_trip(self, tmp_path):
        sink = _record_optimiser_like_spans()
        path = write_chrome_trace(tmp_path / "trace.json", sink.events)
        payload = json.loads(path.read_text())
        assert "traceEvents" in payload
        assert payload["displayTimeUnit"] == "ms"

    def test_empty_recording_gives_empty_trace(self):
        assert chrome_trace_events([]) == []


class TestPhaseBreakdown:
    def test_rows_sum_to_about_100_percent(self):
        sink = _record_optimiser_like_spans()
        rows = phase_breakdown(sink.events)
        assert {r.phase for r in rows} >= {
            "startup", "rotate", "remap", "validate",
        }
        total = sum(r.percent for r in rows)
        assert 99.0 <= total <= 100.5

    def test_other_row_accounts_for_gaps(self):
        sink = _record_optimiser_like_spans()
        rows = phase_breakdown(sink.events)
        assert rows[-1].phase == "other"
        assert rows[-1].calls == 0

    def test_empty_events(self):
        assert phase_breakdown([]) == []
        assert format_breakdown([]) == "(no spans recorded)"

    def test_format_breakdown_table(self):
        sink = _record_optimiser_like_spans()
        text = format_breakdown(phase_breakdown(sink.events))
        assert "phase" in text and "%" in text
        assert "remap" in text and "total" in text


class TestMetricsReport:
    def test_renders_all_instrument_kinds(self):
        with sink_installed(InMemorySink()):
            metrics.inc("c1", 3)
            metrics.set_gauge("g1", 0.5)
            metrics.observe("h1", 2)
        text = metrics_report(metrics.snapshot())
        assert "| c1 | 3 |" in text
        assert "g1" in text and "h1" in text

    def test_empty_snapshot(self):
        assert "(no metrics recorded)" in metrics_report(metrics.snapshot())
