"""Unit tests for Leiserson–Saxe clock-period-minimising retiming."""

import pytest

from repro.errors import RetimingError
from repro.graph import CSDFG, critical_path_length
from repro.retiming import (
    apply_retiming,
    feasible_retiming_for_period,
    min_period_retiming,
    wd_matrices,
)


def correlator():
    """The Leiserson–Saxe running example (digital correlator).

    Host h (t=0 is not allowed here, use 1), comparators (t=3),
    adders (t=7): the classic instance where retiming cuts the clock
    period from 24 to 13 (times shifted by our t >= 1 constraint).
    """
    g = CSDFG("correlator")
    g.add_node("h", 1)
    for name in ("d1", "d2", "d3"):
        g.add_node(name, 3)
    for name in ("p1", "p2", "p3"):
        g.add_node(name, 7)
    g.add_edge("h", "d1", 1, 1)
    g.add_edge("d1", "d2", 1, 1)
    g.add_edge("d2", "d3", 1, 1)
    g.add_edge("d1", "p1", 0, 1)
    g.add_edge("d2", "p2", 0, 1)
    g.add_edge("d3", "p3", 0, 1)
    g.add_edge("p3", "p2", 0, 1)
    g.add_edge("p2", "p1", 0, 1)
    g.add_edge("p1", "h", 0, 1)
    return g


class TestWD:
    def test_diagonal(self, figure1):
        index, w, D = wd_matrices(figure1)
        for node, i in index.items():
            assert w[i, i] == 0
            assert D[i, i] == figure1.time(node)

    def test_simple_path(self, figure1):
        index, w, D = wd_matrices(figure1)
        a, b, d = index["A"], index["B"], index["D"]
        assert w[a, b] == 0
        assert D[a, b] == 3  # t(A) + t(B)
        assert w[a, d] == 0
        assert D[a, d] == 4  # A + B + D

    def test_min_delay_wins(self, figure1):
        index, w, D = wd_matrices(figure1)
        d, a = index["D"], index["A"]
        assert w[d, a] == 3  # only path is the feedback edge

    def test_unreachable_pair(self):
        g = CSDFG("two")
        g.add_nodes("ab")
        g.add_edge("a", "b", 0, 1)
        index, w, D = wd_matrices(g)
        assert w[index["b"], index["a"]] > 10**9  # sentinel


class TestFeasibility:
    def test_period_below_max_time_infeasible(self, figure1):
        assert feasible_retiming_for_period(figure1, 1) is None

    def test_original_period_feasible(self, figure1):
        cp = critical_path_length(figure1)
        r = feasible_retiming_for_period(figure1, cp)
        assert r is not None
        retimed = apply_retiming(figure1, r)
        assert critical_path_length(retimed) <= cp


class TestMinPeriod:
    def test_figure1(self, figure1):
        period, r = min_period_retiming(figure1)
        retimed = apply_retiming(figure1, r)
        assert critical_path_length(retimed) == period
        assert period <= critical_path_length(figure1)

    def test_correlator_improves(self):
        g = correlator()
        before = critical_path_length(g)
        period, r = min_period_retiming(g)
        assert period < before
        retimed = apply_retiming(g, r)
        assert critical_path_length(retimed) == period

    def test_acyclic_graph_fully_pipelines(self, diamond_dag):
        # a host-free DAG has no cycle to constrain the retiming, so
        # registers can be inserted on every edge: the period drops to
        # the largest single node time (classic DAG pipelining)
        period, r = min_period_retiming(diamond_dag)
        assert period == max(diamond_dag.time(v) for v in diamond_dag.nodes())
        retimed = apply_retiming(diamond_dag, r)
        assert critical_path_length(retimed) == period

    def test_host_cycle_pins_io_latency(self, diamond_dag):
        # a host edge t -> s closing the loop bounds the period by the
        # cycle ratio: 1 delay over 3 time units pins the period at 3
        g1 = diamond_dag.copy()
        g1.add_edge("t", "s", 1, 1)
        period1, _ = min_period_retiming(g1)
        assert period1 == 3  # == ceil(cycle time / cycle delays)
        # 2 delays allow period 2 = ceil(3 / 2)
        g2 = diamond_dag.copy()
        g2.add_edge("t", "s", 2, 1)
        period2, r2 = min_period_retiming(g2)
        assert period2 == 2
        retimed = apply_retiming(g2, r2)
        assert critical_path_length(retimed) == 2
        # cycle delay preserved by retiming (s -> l -> t -> s)
        cycle_delay = (
            retimed.delay("s", "l")
            + retimed.delay("l", "t")
            + retimed.delay("t", "s")
        )
        assert cycle_delay == 2

    def test_empty_graph_raises(self):
        with pytest.raises(RetimingError):
            min_period_retiming(CSDFG())

    def test_period_never_below_iteration_time_bound(self, figure7):
        period, _ = min_period_retiming(figure7)
        assert period >= max(figure7.time(v) for v in figure7.nodes())
