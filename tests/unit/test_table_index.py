"""Randomized equivalence: interval-indexed table vs naive reference.

The interval-indexed :class:`~repro.schedule.table.ScheduleTable`
replaced the original per-cell dict table, which is preserved verbatim
as :class:`~repro.perf.reference.ReferenceScheduleTable`.  This suite
drives both through the same random operation sequences (200 seeds)
and asserts every observable — cells, rows, slots, counters, lengths,
and raised errors — coincides at every step.
"""

import random

import pytest

from repro.errors import PlacementConflictError, ScheduleError
from repro.perf.reference import ReferenceScheduleTable
from repro.schedule.table import ScheduleTable

NODES = [f"n{i}" for i in range(12)]
ERRORS = (ScheduleError, PlacementConflictError)


def _observable_state(table, num_pes, window=24):
    """Everything a caller can see, as one comparable structure."""
    grid = {
        (pe, cs): table.cell(pe, cs)
        for pe in range(-1, num_pes + 1)
        for cs in range(1, window + 1)
    }
    placements = {
        n: (p.pe, p.start, p.duration, p.occupancy)
        for n, p in ((n, table.placement(n)) for n in table.nodes())
    }
    return {
        "length": table.length,
        "makespan": table.makespan,
        "num_tasks": table.num_tasks,
        "placements": placements,
        "grid": grid,
        "busy": [table.busy_cells(pe) for pe in range(-1, num_pes + 1)],
        "first_row": table.first_row(),
        "rows": {cs: table.row(cs) for cs in range(1, window + 1)},
        "pe_tasks": {
            pe: [(p.node, p.start) for p in table.pe_tasks(pe)]
            for pe in range(num_pes)
        },
    }


def _run_op(table, op, params):
    """Apply one op; return ("ok", result) or ("err", type, message)."""
    try:
        if op == "place":
            p = table.place(*params)
            return ("ok", (p.node, p.pe, p.start, p.duration, p.occupancy))
        if op == "remove":
            p = table.remove(params)
            return ("ok", (p.node, p.pe, p.start, p.duration, p.occupancy))
        if op == "shift":
            table.shift_all(params)
            return ("ok", None)
        if op == "set_length":
            table.set_length(params)
            return ("ok", None)
        if op == "trim":
            table.trim()
            return ("ok", None)
        raise AssertionError(op)
    except ERRORS as exc:
        return ("err", type(exc).__name__, str(exc))


def _random_op(rng, num_pes):
    roll = rng.random()
    if roll < 0.55:
        duration = rng.randint(1, 4)
        occupancy = rng.choice([None, 1, duration, rng.randint(1, 5)])
        return (
            "place",
            (
                rng.choice(NODES),
                rng.randint(-1, num_pes),  # sometimes out of range
                rng.randint(-1, 14),  # sometimes illegal (< 1)
                duration,
                occupancy,
            ),
        )
    if roll < 0.75:
        return ("remove", rng.choice(NODES))
    if roll < 0.85:
        return ("shift", rng.randint(-3, 3))
    if roll < 0.93:
        return ("set_length", rng.randint(0, 20))
    return ("trim", None)


@pytest.mark.parametrize("seed", range(200))
def test_random_op_sequences_match_reference(seed):
    rng = random.Random(seed)
    num_pes = rng.randint(1, 5)
    fast = ScheduleTable(num_pes)
    ref = ReferenceScheduleTable(num_pes)
    for _ in range(40):
        op, params = _random_op(rng, num_pes)
        got_fast = _run_op(fast, op, params)
        got_ref = _run_op(ref, op, params)
        assert got_fast == got_ref, (seed, op, params)
        assert _observable_state(fast, num_pes) == _observable_state(
            ref, num_pes
        ), (seed, op, params)
        # slot queries against the current state
        pe = rng.randint(-1, num_pes)
        not_before = rng.randint(1, 12)
        duration = rng.randint(1, 4)
        horizon = rng.choice([None, rng.randint(1, 25)])
        assert fast.earliest_slot(
            pe, not_before, duration, horizon=horizon
        ) == ref.earliest_slot(pe, not_before, duration, horizon=horizon)
        assert list(fast.free_slots(pe, not_before, duration, 25)) == list(
            ref.free_slots(pe, not_before, duration, 25)
        )
        cs = rng.randint(-1, 20)
        assert fast.is_free(pe, cs, duration) == ref.is_free(pe, cs, duration)


def test_copy_preserves_observable_state():
    rng = random.Random(1234)
    fast = ScheduleTable(4)
    ref = ReferenceScheduleTable(4)
    for _ in range(30):
        op, params = _random_op(rng, 4)
        _run_op(fast, op, params)
        _run_op(ref, op, params)
    assert _observable_state(fast.copy(), 4) == _observable_state(
        ref.copy(), 4
    )
    # copies are independent of their originals
    clone = fast.copy()
    clone.place("fresh", 0, 30, 2)
    assert "fresh" not in fast


def test_busy_cells_counts_occupancy_not_duration():
    table = ScheduleTable(2)
    table.place("a", 0, 1, 4, 1)  # pipelined: blocks one step
    table.place("b", 0, 2, 3)
    assert table.busy_cells(0) == 1 + 3
    assert table.busy_cells(1) == 0
    assert table.busy_cells(7) == 0  # out of range reads as empty
    table.remove("b")
    assert table.busy_cells(0) == 1


def test_row_reports_pe_order():
    table = ScheduleTable(3)
    table.place("c", 2, 1, 2)
    table.place("a", 0, 1, 1)
    table.place("b", 1, 2, 2)
    assert table.row(1) == [(0, "a"), (2, "c")]
    assert table.row(2) == [(1, "b"), (2, "c")]
    assert table.first_row() == ["a", "c"]


@pytest.mark.parametrize("table_cls", [ScheduleTable, ReferenceScheduleTable])
def test_illegal_shift_leaves_table_intact(table_cls):
    table = table_cls(2)
    table.place("a", 0, 2, 2)
    table.place("b", 1, 3, 1)
    before = _observable_state(table, 2)
    with pytest.raises(ScheduleError):
        table.shift_all(-5)
    assert _observable_state(table, 2) == before
