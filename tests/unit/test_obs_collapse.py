"""Span-tree reconstruction, self time, and collapsed stacks."""

from repro.obs import InMemorySink, sink_installed, span
from repro.obs.collapse import build_span_tree, collapsed_stacks, self_times


def _span_event(name, start, dur, depth):
    return {
        "type": "span",
        "name": name,
        "start_ns": start,
        "dur_ns": dur,
        "depth": depth,
        "attrs": {},
    }


class TestBuildSpanTree:
    def test_parent_child_linking(self):
        events = [
            _span_event("root", 0, 100, 0),
            _span_event("a", 10, 30, 1),
            _span_event("b", 50, 40, 1),
            _span_event("leaf", 55, 10, 2),
        ]
        nodes = {n.name: n for n in build_span_tree(events)}
        assert nodes["a"].stack == ("root", "a")
        assert nodes["b"].stack == ("root", "b")
        assert nodes["leaf"].stack == ("root", "b", "leaf")
        assert nodes["root"].children_dur_ns == 70
        assert nodes["b"].children_dur_ns == 10

    def test_orphan_depth_becomes_root(self):
        # a depth-2 span with no recorded ancestors roots its own stack
        nodes = build_span_tree([_span_event("lonely", 5, 10, 2)])
        assert nodes[0].stack == ("lonely",)

    def test_sibling_at_same_depth_not_parent(self):
        events = [
            _span_event("first", 0, 10, 0),
            _span_event("second", 20, 10, 0),
            _span_event("child", 22, 5, 1),
        ]
        nodes = {n.name: n for n in build_span_tree(events)}
        assert nodes["child"].stack == ("second", "child")

    def test_from_real_recording(self):
        sink = InMemorySink()
        with sink_installed(sink):
            with span("outer"):
                with span("inner"):
                    pass
        nodes = {n.name: n for n in build_span_tree(sink.events)}
        assert nodes["inner"].stack == ("outer", "inner")
        assert nodes["outer"].self_ns + nodes["inner"].dur_ns == (
            nodes["outer"].dur_ns
        )


class TestSelfTimes:
    def test_self_excludes_children(self):
        events = [
            _span_event("root", 0, 100, 0),
            _span_event("a", 10, 30, 1),
        ]
        rows = self_times(events)
        assert rows[("root",)]["self_ns"] == 70
        assert rows[("root", "a")]["self_ns"] == 30

    def test_repeated_stacks_aggregate(self):
        events = [
            _span_event("root", 0, 100, 0),
            _span_event("a", 10, 20, 1),
            _span_event("a", 40, 25, 1),
        ]
        rows = self_times(events)
        assert rows[("root", "a")] == {
            "calls": 2, "self_ns": 45, "total_ns": 45,
        }

    def test_total_self_equals_root_duration(self):
        events = [
            _span_event("root", 0, 100, 0),
            _span_event("a", 0, 60, 1),
            _span_event("b", 60, 40, 1),
            _span_event("c", 65, 10, 2),
        ]
        assert sum(r["self_ns"] for r in self_times(events).values()) == 100


class TestCollapsedStacks:
    def test_format_and_order(self):
        events = [
            _span_event("root", 0, 100_000, 0),
            _span_event("a", 10_000, 30_000, 1),
        ]
        assert collapsed_stacks(events) == [
            "root 70",        # 70_000 ns self -> 70 us
            "root;a 30",
        ]

    def test_empty_events(self):
        assert collapsed_stacks([]) == []

    def test_non_ascii_names_survive(self):
        events = [_span_event("época", 0, 2_000, 0)]
        assert collapsed_stacks(events) == ["época 2"]
