"""Unit tests for the exact branch-and-bound scheduler."""

import pytest

from repro.arch import CompletelyConnected, LinearArray
from repro.baselines import exact_minimum_length, find_schedule_of_length
from repro.core import cyclo_compact, start_up_schedule
from repro.errors import SchedulingError
from repro.graph import CSDFG
from repro.schedule import is_valid_schedule
from repro.workloads import figure1_csdfg, figure1_mesh


class TestFindScheduleOfLength:
    def test_feasible_length_yields_valid_schedule(self):
        g, m = figure1_csdfg(), figure1_mesh()
        s = find_schedule_of_length(g, m, 7)
        assert s is not None
        assert s.length == 7
        assert is_valid_schedule(g, m, s)

    def test_infeasible_length_returns_none(self):
        g, m = figure1_csdfg(), figure1_mesh()
        assert find_schedule_of_length(g, m, 4) is None

    def test_too_large_graph_rejected(self):
        from repro.workloads import figure7_csdfg

        with pytest.raises(SchedulingError, match="nodes"):
            find_schedule_of_length(figure7_csdfg(), CompletelyConnected(4), 10)

    def test_budget_guard(self):
        from repro.graph import random_csdfg

        g = random_csdfg(10, seed=1, edge_prob=0.1, back_edge_prob=0.3)
        with pytest.raises(SchedulingError, match="budget"):
            find_schedule_of_length(
                g, CompletelyConnected(4), 30, node_budget=5
            )


class TestExactMinimum:
    def test_figure1_no_retiming_optimum(self):
        # the paper's start-up schedule is placement-optimal: 7 is the
        # best any scheduler can do without retiming the graph
        g, m = figure1_csdfg(), figure1_mesh()
        L, witness = exact_minimum_length(g, m)
        assert L == 7
        assert is_valid_schedule(g, m, witness)
        assert start_up_schedule(g, m).length == L

    def test_certifies_cyclo_final_placement(self):
        g, m = figure1_csdfg(), figure1_mesh()
        result = cyclo_compact(g, m)
        L, _ = exact_minimum_length(result.graph, m)
        assert result.final_length == L  # remapping left nothing behind

    def test_single_node(self):
        g = CSDFG("one")
        g.add_node("a", 3)
        g.add_edge("a", "a", 1, 1)
        L, witness = exact_minimum_length(g, CompletelyConnected(2))
        assert L == 3
        assert witness.processor("a") in (0, 1)

    def test_parallel_tasks(self):
        g = CSDFG("par")
        for n in "abcd":
            g.add_node(n, 2)
        L, _ = exact_minimum_length(g, CompletelyConnected(4))
        assert L == 2
        L2, _ = exact_minimum_length(g, CompletelyConnected(2))
        assert L2 == 4

    def test_comm_forces_serialisation(self):
        # chain with heavy messages: splitting across the linear array
        # costs more than serialising on one PE
        g = CSDFG("chain")
        g.add_node("u", 2)
        g.add_node("v", 2)
        g.add_edge("u", "v", 0, 5)
        L, witness = exact_minimum_length(g, LinearArray(2))
        assert L == 4
        assert witness.processor("u") == witness.processor("v")

    def test_heterogeneous_exact(self):
        g = CSDFG("solo")
        g.add_node("a", 2)
        arch = CompletelyConnected(2).with_time_scales([3, 1])
        L, witness = exact_minimum_length(g, arch)
        assert L == 2
        assert witness.processor("a") == 1  # the fast PE

    def test_heuristics_never_beat_exact(self):
        from repro.baselines import etf_schedule
        from repro.graph import random_csdfg

        for seed in range(4):
            g = random_csdfg(
                6, seed=seed, edge_prob=0.3, back_edge_prob=0.2, max_time=2
            )
            arch = LinearArray(3)
            L, _ = exact_minimum_length(g, arch)
            assert start_up_schedule(g, arch).length >= L
            assert etf_schedule(g, arch).length >= L
