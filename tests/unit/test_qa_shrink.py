"""Unit tests for the delta-debugging shrinker.

The acceptance-grade scenario lives here too: inject a real scheduler
bug (an under-priced communication cost in the fast-path cache), let
the fuzzer catch it, and require the shrinker to hand back a
reproducer of at most 8 nodes that still fails.
"""

import pytest

from repro.arch.cache import CommCostCache
from repro.core import CycloConfig
from repro.errors import QAError
from repro.graph.validation import is_legal
from repro.qa import ArchSpec, ReproCase, replay_case, sample_graph, shrink_case

CFG = CycloConfig(max_iterations=3, validate_each_step=False)


def _passing_case(seed=0):
    return ReproCase(
        graph=sample_graph(seed),
        arch_spec=ArchSpec("ring", 3),
        config=CFG,
        prop="schedules-legal",
        seed=seed,
    )


@pytest.fixture
def comm_underpricing(monkeypatch):
    """Make the fast-path cost cache under-price remote messages."""
    real = CommCostCache.cost

    def buggy(self, src, dst, volume):
        cost = real(self, src, dst, volume)
        if src != dst and max(src, dst) >= 2 and cost > 0:
            return cost - 1
        return cost

    monkeypatch.setattr(CommCostCache, "cost", buggy)


class TestContracts:
    def test_passing_case_is_rejected(self):
        with pytest.raises(QAError, match="needs a failing case"):
            shrink_case(_passing_case())

    def test_custom_check_drives_the_search(self):
        # a synthetic predicate: "fails whenever node 'keep' exists";
        # the shrinker must strip everything else away
        base = _passing_case(seed=5)
        graph = base.graph.copy()
        graph.add_node("keep", 1)
        case = base.with_graph(graph)

        def check(candidate):
            if any(str(v) == "keep" for v in candidate.graph.nodes()):
                return ["synthetic: 'keep' is present"]
            return []

        result = shrink_case(case, check=check)
        assert [str(v) for v in result.case.graph.nodes()] == ["keep"]
        assert result.case.graph.num_edges == 0
        assert result.nodes_removed == case.graph.num_nodes - 1
        assert result.violations == ["synthetic: 'keep' is present"]
        assert result.attempts <= 4000

    def test_shrunk_case_stays_paper_legal(self):
        case = _passing_case(seed=9)

        def check(candidate):
            return ["always fails"]

        result = shrink_case(case, check=check)
        assert is_legal(result.case.graph)
        result.case.arch_spec.build()  # must not raise

    def test_budget_caps_the_search(self):
        case = _passing_case(seed=2)
        calls = []

        def check(candidate):
            calls.append(1)
            return ["always fails"]

        shrink_case(case, check=check, max_attempts=10)
        # initial check + final check + at most max_attempts candidates
        assert len(calls) <= 12


class TestInjectedBugEndToEnd:
    def test_fuzzer_catches_and_shrinks_below_eight_nodes(
        self, comm_underpricing
    ):
        from repro.qa import run_fuzz

        report = run_fuzz(trials=40, seed=7, shrink=True)
        assert report.failures, "the injected comm-cost bug went unnoticed"
        shrunk_sizes = [
            t.shrunk_nodes for t in report.failures
            if t.shrunk_nodes is not None
        ]
        assert shrunk_sizes, "no failing trial produced a shrunk case"
        assert min(shrunk_sizes) <= 8, shrunk_sizes

    def test_shrunk_reproducer_still_fails_and_replays(
        self, comm_underpricing
    ):
        from repro.qa import run_fuzz

        report = run_fuzz(trials=40, seed=7, shrink=True)
        failing = [t for t in report.failures if t.shrunk_json is not None]
        assert failing
        case = ReproCase.from_json(failing[0].shrunk_json)
        violations = replay_case(case)
        assert violations, "shrunk reproducer no longer reproduces the bug"

    def test_healthy_code_passes_the_same_seeds(self):
        from repro.qa import run_fuzz

        report = run_fuzz(trials=40, seed=7, shrink=False)
        assert report.ok, report.describe()
