"""Unit tests for event sinks (repro.obs.sinks / runtime)."""

import json

from repro.obs import (
    EventSink,
    InMemorySink,
    NDJSONSink,
    emit,
    enabled,
    install_sink,
    installed_sinks,
    remove_all_sinks,
    remove_sink,
    sink_installed,
    span,
)


class TestRuntime:
    def test_install_enables_remove_disables(self):
        sink = InMemorySink()
        assert not enabled()
        install_sink(sink)
        assert enabled()
        assert sink in installed_sinks()
        remove_sink(sink)
        assert not enabled()

    def test_double_install_is_idempotent(self):
        sink = InMemorySink()
        install_sink(sink)
        install_sink(sink)
        assert installed_sinks().count(sink) == 1
        remove_sink(sink)

    def test_remove_unknown_sink_is_harmless(self):
        remove_sink(InMemorySink())
        assert not enabled()

    def test_fanout_to_multiple_sinks(self):
        a, b = InMemorySink(), InMemorySink()
        install_sink(a)
        install_sink(b)
        emit({"type": "test"})
        remove_all_sinks()
        assert a.events == [{"type": "test"}]
        assert b.events == [{"type": "test"}]

    def test_sink_installed_scopes_and_closes(self):
        sink = InMemorySink()
        with sink_installed(sink):
            assert enabled()
        assert not enabled()


class TestInMemorySink:
    def test_satisfies_protocol(self):
        assert isinstance(InMemorySink(), EventSink)

    def test_spans_filter(self):
        sink = InMemorySink()
        sink.emit({"type": "span", "name": "a"})
        sink.emit({"type": "other"})
        assert [e["name"] for e in sink.spans()] == ["a"]

    def test_clear(self):
        sink = InMemorySink()
        sink.emit({"type": "x"})
        sink.clear()
        assert sink.events == []


class TestNDJSONSink:
    def test_satisfies_protocol(self, tmp_path):
        assert isinstance(NDJSONSink(str(tmp_path / "x.ndjson")), EventSink)

    def test_writes_valid_ndjson(self, tmp_path):
        path = tmp_path / "events.ndjson"
        sink = NDJSONSink(str(path))
        with sink_installed(sink):
            with span("alpha", k=1):
                with span("beta"):
                    pass
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        events = [json.loads(line) for line in lines]  # every line parses
        assert {e["name"] for e in events} == {"alpha", "beta"}
        for e in events:
            assert e["type"] == "span"
            assert isinstance(e["start_ns"], int)
            assert isinstance(e["dur_ns"], int)

    def test_no_file_until_first_event(self, tmp_path):
        path = tmp_path / "empty.ndjson"
        sink = NDJSONSink(str(path))
        sink.close()
        assert not path.exists()

    def test_non_json_values_are_stringified(self, tmp_path):
        path = tmp_path / "odd.ndjson"
        sink = NDJSONSink(str(path))
        sink.emit({"type": "span", "attrs": {"obj": object()}})
        sink.close()
        (line,) = path.read_text().splitlines()
        assert "object object" in json.loads(line)["attrs"]["obj"]

    def test_count_tracks_emitted_events(self, tmp_path):
        sink = NDJSONSink(str(tmp_path / "c.ndjson"))
        for i in range(3):
            sink.emit({"i": i})
        sink.close()
        assert sink.count == 3
