"""Unit tests for the markdown report generator."""

from repro.analysis import (
    PaperComparison,
    markdown_comparison_table,
    markdown_grid,
    run_cell,
    run_grid,
)
from repro.arch import CompletelyConnected, LinearArray
from repro.core import CycloConfig

FAST = CycloConfig(max_iterations=10, validate_each_step=False)


class TestPaperComparison:
    def test_shape_match(self, figure1, mesh2x2):
        cell, _ = run_cell(figure1, mesh2x2, config=FAST)
        comp = PaperComparison("fig1", 7, 5, cell)
        assert comp.matches_shape

    def test_shape_mismatch_when_far(self, figure1, mesh2x2):
        cell, _ = run_cell(figure1, mesh2x2, config=FAST)
        comp = PaperComparison("fig1", 30, 20, cell)
        assert not comp.matches_shape

    def test_unreported_paper_values_ignored(self, figure1, mesh2x2):
        cell, _ = run_cell(figure1, mesh2x2, config=FAST)
        comp = PaperComparison("fig1", None, None, cell)
        assert comp.matches_shape


class TestMarkdownRendering:
    def test_comparison_table(self, figure1, mesh2x2):
        cell, _ = run_cell(figure1, mesh2x2, config=FAST)
        text = markdown_comparison_table(
            "Figure 1", [PaperComparison("mesh", 7, 5, cell)]
        )
        assert "### Figure 1" in text
        assert "| mesh | 7 | 5 |" in text
        assert "ok" in text

    def test_missing_paper_cells_dashed(self, figure1, mesh2x2):
        cell, _ = run_cell(figure1, mesh2x2, config=FAST)
        text = markdown_comparison_table(
            "X", [PaperComparison("m", None, None, cell)]
        )
        assert "| m | - | - |" in text

    def test_grid_table(self, figure1):
        cells = run_grid(
            figure1,
            {"com": CompletelyConnected(4), "lin": LinearArray(4)},
            config=FAST,
        )
        text = markdown_grid("grid", cells)
        assert "| com |" in text and "| lin |" in text
        assert "passes to best" in text
