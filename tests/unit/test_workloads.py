"""Unit tests for the bundled workload graphs."""

import pytest

from repro.errors import WorkloadError
from repro.graph import is_legal, iteration_bound, validate_csdfg
from repro.workloads import (
    FIGURE1_NODE_TIMES,
    FIGURE7_NODE_TIMES,
    SuiteSpec,
    all_pole_iir,
    biquad_cascade,
    differential_equation_solver,
    elliptic_wave_filter,
    figure1_csdfg,
    figure7_csdfg,
    fir_filter,
    lattice_filter,
    layered_suite,
    make_workload,
    random_suite,
    workload_names,
)


class TestFigure1:
    def test_exact_transcription(self):
        g = figure1_csdfg()
        assert g.num_nodes == 6
        assert g.num_edges == 10
        assert {v: g.time(v) for v in g.nodes()} == FIGURE1_NODE_TIMES
        assert g.delay("D", "A") == 3
        assert g.delay("F", "E") == 1
        assert g.volume("B", "E") == 2
        assert g.volume("D", "F") == 2
        assert g.volume("D", "A") == 3

    def test_legal(self):
        validate_csdfg(figure1_csdfg(), require_weakly_connected=True)


class TestFigure7:
    def test_shape(self):
        g = figure7_csdfg()
        assert g.num_nodes == 19
        assert {v: g.time(v) for v in g.nodes()} == FIGURE7_NODE_TIMES
        assert sum(1 for v in g.nodes() if g.time(v) == 2) == 5

    def test_legal_and_cyclic(self):
        g = figure7_csdfg()
        validate_csdfg(g, require_weakly_connected=True)
        assert iteration_bound(g) > 0


class TestFilters:
    def test_elliptic_operation_mix(self):
        g = elliptic_wave_filter()
        assert g.num_nodes == 34
        muls = [v for v in g.nodes() if g.time(v) == 2]
        adds = [v for v in g.nodes() if g.time(v) == 1]
        assert len(muls) == 8
        assert len(adds) == 26
        validate_csdfg(g, require_weakly_connected=True)

    def test_elliptic_custom_times(self):
        g = elliptic_wave_filter(mul_time=5, add_time=2)
        assert max(g.time(v) for v in g.nodes()) == 5
        assert min(g.time(v) for v in g.nodes()) == 2

    def test_elliptic_is_recursive(self):
        assert iteration_bound(elliptic_wave_filter()) > 0

    def test_lattice_structure(self):
        g = lattice_filter(4)
        assert g.num_nodes == 4 * 4 + 2
        validate_csdfg(g, require_weakly_connected=True)
        assert iteration_bound(g) > 0

    def test_lattice_stage_scaling(self):
        assert lattice_filter(8).num_nodes == 8 * 4 + 2

    def test_lattice_rejects_zero_stages(self):
        with pytest.raises(WorkloadError):
            lattice_filter(0)

    def test_biquad(self):
        g = biquad_cascade(3)
        assert g.num_nodes == 3 * 8
        validate_csdfg(g, require_weakly_connected=True)
        assert iteration_bound(g) > 0

    def test_filter_time_guard(self):
        with pytest.raises(WorkloadError):
            elliptic_wave_filter(mul_time=0)


class TestDsp:
    def test_diffeq_legal(self):
        g = differential_equation_solver()
        validate_csdfg(g, require_weakly_connected=True)
        assert g.num_nodes == 10
        assert iteration_bound(g) > 0

    def test_fir_pipelined(self):
        g = fir_filter(8)
        validate_csdfg(g, require_weakly_connected=True)
        # transposed FIR: every partial-sum chain edge carries a delay
        chain_edges = [
            e
            for e in g.edges()
            if e.dst.startswith("a") and not e.src == f"m{int(e.dst[1:])}"
        ]
        assert chain_edges
        assert all(e.delay == 1 for e in chain_edges)

    def test_iir_bound(self):
        g = all_pole_iir(4)
        assert is_legal(g)
        assert iteration_bound(g) >= 3  # tap-1 cycle: mul 2 + adders

    def test_guards(self):
        with pytest.raises(WorkloadError):
            fir_filter(0)
        with pytest.raises(WorkloadError):
            all_pole_iir(0)
        with pytest.raises(WorkloadError):
            biquad_cascade(0)


class TestRegistry:
    def test_names_sorted(self):
        names = workload_names()
        assert names == sorted(names)
        assert "figure1" in names and "elliptic5" in names

    def test_make_workload_fresh_instances(self):
        a, b = make_workload("figure1"), make_workload("figure1")
        assert a is not b
        assert a.structurally_equal(b)

    def test_every_registered_workload_is_legal(self):
        for name in workload_names():
            assert is_legal(make_workload(name)), name

    def test_unknown_name(self):
        with pytest.raises(WorkloadError, match="unknown workload"):
            make_workload("nope")


class TestSuites:
    def test_random_suite(self):
        graphs = random_suite(SuiteSpec(count=4, num_nodes=10, seed=3))
        assert len(graphs) == 4
        assert all(is_legal(g) for g in graphs)
        assert not graphs[0].structurally_equal(graphs[1])

    def test_layered_suite(self):
        graphs = layered_suite(3)
        assert len(graphs) == 3
        assert all(is_legal(g) for g in graphs)

    def test_spec_guards(self):
        with pytest.raises(WorkloadError):
            SuiteSpec(count=0, num_nodes=5)
        with pytest.raises(WorkloadError):
            layered_suite(0)
