"""Unit tests for typed fault events and seeded campaigns."""

import pytest

from repro.arch import Mesh2D, Ring
from repro.errors import ArchitectureError
from repro.resilience import (
    FaultCampaign,
    LinkFault,
    PEFault,
    random_campaign,
)


class TestFaultEvents:
    def test_pe_fault_fields(self):
        f = PEFault(2, at_step=5)
        assert f.permanent
        assert "pe3" in f.describe() and "permanent" in f.describe()
        t = PEFault(2, at_step=5, duration=4)
        assert not t.permanent
        assert "4-step" in t.describe()

    def test_link_fault_canonical_order(self):
        f = LinkFault(3, 1)
        assert f.link == (1, 3)

    def test_validation(self):
        with pytest.raises(ArchitectureError):
            PEFault(-1)
        with pytest.raises(ArchitectureError):
            PEFault(0, at_step=0)
        with pytest.raises(ArchitectureError):
            LinkFault(2, 2)
        with pytest.raises(ArchitectureError):
            PEFault(0, duration=0)


class TestCampaign:
    def test_ordered_by_strike_time(self):
        c = FaultCampaign([PEFault(0, at_step=9), LinkFault(0, 1, at_step=2)])
        assert [f.at_step for f in c.ordered()] == [2, 9]

    def test_filters(self):
        c = FaultCampaign([PEFault(0), LinkFault(0, 1), PEFault(2)])
        assert len(c.pe_faults()) == 2
        assert len(c.link_faults()) == 1
        assert len(c) == 3

    def test_json_roundtrip(self):
        c = FaultCampaign(
            [PEFault(1, at_step=3, duration=7), LinkFault(0, 2, at_step=5)],
            seed=42,
            name="unit",
        )
        back = FaultCampaign.from_json(c.to_json())
        assert back.faults == c.faults
        assert back.seed == 42 and back.name == "unit"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ArchitectureError, match="unknown fault kind"):
            FaultCampaign.from_dict({"faults": [{"kind": "cosmic-ray"}]})


class TestRandomCampaign:
    def test_deterministic(self):
        arch = Mesh2D(2, 4)
        a = random_campaign(arch, seed=11, num_faults=3)
        b = random_campaign(arch, seed=11, num_faults=3)
        assert a.faults == b.faults
        c = random_campaign(arch, seed=12, num_faults=3)
        assert a.faults != c.faults

    def test_never_kills_every_pe(self):
        arch = Ring(3)
        c = random_campaign(
            arch, seed=0, num_faults=10, link_fraction=0.0
        )
        assert len(c.pe_faults()) <= arch.num_pes - 1

    def test_faults_target_real_hardware(self):
        arch = Mesh2D(2, 4)
        links = set(arch.links)
        c = random_campaign(arch, seed=5, num_faults=6)
        for f in c.pe_faults():
            assert 0 <= f.pe < arch.num_pes
        for f in c.link_faults():
            assert f.link in links

    def test_transient_fraction(self):
        arch = Mesh2D(2, 4)
        c = random_campaign(
            arch, seed=3, num_faults=8, transient_fraction=1.0
        )
        assert all(not f.permanent for f in c)
