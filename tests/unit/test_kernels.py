"""Unit tests for the additional kernel workloads."""

import pytest

from repro.arch import Mesh2D, Ring
from repro.core import CycloConfig, cyclo_compact
from repro.errors import WorkloadError
from repro.graph import critical_path_length, iteration_bound, validate_csdfg
from repro.retiming import min_period_retiming
from repro.schedule import is_valid_schedule
from repro.workloads import correlator, fft_stage, volterra, wavefront

FAST = CycloConfig(max_iterations=20, validate_each_step=False)


class TestFftStage:
    def test_structure(self):
        g = fft_stage(8)
        assert g.num_nodes == 12  # 4 butterflies x (1 mul + 2 adds)
        validate_csdfg(g, require_weakly_connected=True)

    def test_recursive(self):
        assert iteration_bound(fft_stage(8)) > 0

    def test_guards(self):
        with pytest.raises(WorkloadError):
            fft_stage(7)
        with pytest.raises(WorkloadError):
            fft_stage(0)

    def test_schedulable(self):
        g = fft_stage(8)
        arch = Mesh2D(2, 2)
        result = cyclo_compact(g, arch, config=FAST)
        assert is_valid_schedule(result.graph, arch, result.schedule)


class TestWavefront:
    def test_dependence_pattern(self):
        g = wavefront(5)
        assert g.delay("x0", "x1") == 0  # same sweep, left neighbour
        assert g.delay("x1", "x1") == 1  # previous sweep, self
        assert g.delay("x2", "x1") == 1  # previous sweep, right neighbour
        validate_csdfg(g, require_weakly_connected=True)

    def test_width_guard(self):
        with pytest.raises(WorkloadError):
            wavefront(1)

    def test_neighbour_friendly_on_ring(self):
        g = wavefront(6)
        arch = Ring(6)
        result = cyclo_compact(g, arch, config=FAST)
        assert result.final_length <= result.initial_length


class TestCorrelator:
    def test_structure(self):
        g = correlator(3)
        assert g.num_nodes == 7  # host + 3 comparators + 3 adders
        validate_csdfg(g, require_weakly_connected=True)

    def test_retiming_shortens_critical_path(self):
        g = correlator(3)
        before = critical_path_length(g)
        period, _ = min_period_retiming(g)
        assert period < before  # the canonical retiming win

    def test_guard(self):
        with pytest.raises(WorkloadError):
            correlator(0)


class TestVolterra:
    def test_operation_mix(self):
        g = volterra(3)
        muls = sum(1 for v in g.nodes() if g.time(v) == 2)
        # 3 linear + 6 quadratic (i <= j over 3 taps)
        assert muls == 9
        validate_csdfg(g, require_weakly_connected=True)

    def test_guard(self):
        with pytest.raises(WorkloadError):
            volterra(1)

    def test_schedulable(self):
        g = volterra(3)
        arch = Mesh2D(2, 2)
        result = cyclo_compact(g, arch, config=FAST)
        assert is_valid_schedule(result.graph, arch, result.schedule)
