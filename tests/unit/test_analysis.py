"""Unit tests for the experiment harness."""

from repro.analysis import (
    PRIORITY_VARIANTS,
    comm_awareness_ablation,
    convergence_study,
    format_cells,
    format_table11,
    priority_ablation,
    relaxation_ablation,
    run_cell,
    run_grid,
)
from repro.arch import CompletelyConnected, LinearArray, paper_architectures
from repro.core import CycloConfig

FAST = CycloConfig(max_iterations=15, validate_each_step=False)


class TestRunCell:
    def test_figure1_cell(self, figure1, mesh2x2):
        cell, result = run_cell(figure1, mesh2x2)
        assert cell.init == 7
        assert cell.after <= 5
        assert cell.improvement == cell.init - cell.after
        assert 0 < cell.ratio <= 1
        assert cell.workload == "figure1"
        assert cell.architecture == "mesh2x2"
        assert result.final_length == cell.after

    def test_relaxation_flag_respected(self, figure1, mesh2x2):
        cell, _ = run_cell(figure1, mesh2x2, relaxation=False, config=FAST)
        assert cell.relaxation is False

    def test_bound_is_floor(self, figure7):
        cell, _ = run_cell(figure7, CompletelyConnected(8), config=FAST)
        assert cell.after >= cell.bound


class TestRunGrid:
    def test_all_architectures_present(self, figure1):
        archs = {"com": CompletelyConnected(4), "lin": LinearArray(4)}
        cells = run_grid(figure1, archs, config=FAST)
        assert set(cells) == {"com", "lin"}
        assert all(c.after <= c.init for c in cells.values())


class TestFormatting:
    def test_table11_layout(self, figure1):
        archs = paper_architectures(4)
        cells = run_grid(figure1, archs, config=FAST)
        text = format_table11([("figure1", "with", cells)])
        assert "com:init" in text and "hyp:after" in text
        assert "figure1" in text

    def test_table11_missing_cells_dashed(self):
        text = format_table11([("w", "p", {})])
        assert "-" in text

    def test_format_cells(self, figure1, mesh2x2):
        cell, _ = run_cell(figure1, mesh2x2, config=FAST)
        text = format_cells({"mesh": cell})
        assert "mesh" in text and "init" in text


class TestAblations:
    def test_priority_ablation_runs_all_variants(self, figure7):
        arch = LinearArray(8)
        lengths = priority_ablation(figure7, arch)
        assert set(lengths) == set(PRIORITY_VARIANTS)
        assert all(isinstance(v, int) and v > 0 for v in lengths.values())

    def test_comm_awareness_rows(self, figure1, mesh2x2):
        rows = comm_awareness_ablation(figure1, mesh2x2, config=FAST)
        names = [r.scheduler for r in rows]
        assert names == ["cyclo-compaction", "oblivious-list", "rotation-no-comm"]
        cyclo = rows[0]
        assert cyclo.actual == cyclo.claimed

    def test_relaxation_ablation(self, figure1, mesh2x2):
        out = relaxation_ablation(figure1, mesh2x2, max_iterations=15)
        assert set(out) == {"with", "w/o"}
        assert all(v >= 1 for v in out.values())


class TestConvergence:
    def test_report_shape(self, figure1, mesh2x2):
        report = convergence_study(figure1, mesh2x2, max_iterations=10)
        assert report.lengths[0] == 7
        assert report.best == min(report.lengths)
        assert report.normalized[0] == 1.0
        assert report.passes_to_best <= 10


class TestFullReport:
    def test_generate_contains_all_sections(self):
        from repro.analysis import generate_full_report

        text = generate_full_report(compaction_passes=10)
        assert "Figures 1-4" in text
        assert "Tables 1-10" in text
        assert "Table 11" in text
        assert "Elliptic Filter" in text
        # every 19-node architecture appears as a comparison row
        for key in ("com", "lin", "rin", "2-d", "hyp"):
            assert f"| {key} |" in text
