"""Unit tests for the concrete topology families (paper Figure 5)."""

import pytest

from repro.arch import (
    BalancedTree,
    CompletelyConnected,
    Hypercube,
    LinearArray,
    Mesh2D,
    Ring,
    Star,
    Torus2D,
)
from repro.errors import ArchitectureError, UnknownProcessorError


class TestLinearArray:
    def test_distance_is_abs_difference(self):
        arch = LinearArray(6)
        for i in range(6):
            for j in range(6):
                assert arch.hops(i, j) == abs(i - j)

    def test_link_count(self):
        assert len(LinearArray(8).links) == 7

    def test_degrees(self):
        arch = LinearArray(5)
        assert arch.degree(0) == 1
        assert arch.degree(2) == 2

    def test_diameter(self):
        assert LinearArray(8).diameter == 7


class TestRing:
    def test_distance_wraps(self):
        arch = Ring(8)
        for i in range(8):
            for j in range(8):
                assert arch.hops(i, j) == min((i - j) % 8, (j - i) % 8)

    def test_all_degree_two(self):
        arch = Ring(6)
        assert all(arch.degree(p) == 2 for p in arch.processors)

    def test_diameter_half(self):
        assert Ring(8).diameter == 4
        assert Ring(7).diameter == 3

    def test_too_small(self):
        with pytest.raises(ArchitectureError):
            Ring(2)


class TestCompletelyConnected:
    def test_unit_distances(self):
        arch = CompletelyConnected(8)
        assert arch.diameter == 1
        assert arch.hops(3, 7) == 1

    def test_link_count(self):
        assert len(CompletelyConnected(8).links) == 28


class TestMesh2D:
    def test_manhattan_distance(self):
        arch = Mesh2D(3, 4)
        for a in range(12):
            for b in range(12):
                (r0, c0), (r1, c1) = arch.coordinates(a), arch.coordinates(b)
                assert arch.hops(a, b) == abs(r0 - r1) + abs(c0 - c1)

    def test_degrees(self):
        arch = Mesh2D(3, 3)
        center = arch.pe_at(1, 1)
        corner = arch.pe_at(0, 0)
        edge = arch.pe_at(0, 1)
        assert arch.degree(center) == 4
        assert arch.degree(corner) == 2
        assert arch.degree(edge) == 3

    def test_paper_2x2(self):
        arch = Mesh2D(2, 2)
        assert arch.num_pes == 4
        assert arch.diameter == 2  # diagonal

    def test_coordinates_round_trip(self):
        arch = Mesh2D(2, 4)
        for pe in arch.processors:
            assert arch.pe_at(*arch.coordinates(pe)) == pe

    def test_bad_coordinates(self):
        with pytest.raises(UnknownProcessorError):
            Mesh2D(2, 2).pe_at(2, 0)

    def test_bad_dimensions(self):
        with pytest.raises(ArchitectureError):
            Mesh2D(0, 3)


class TestTorus2D:
    def test_wraparound_shortens(self):
        mesh = Mesh2D(3, 3)
        torus = Torus2D(3, 3)
        assert torus.hops(0, 2) == 1  # wraps in the row
        assert mesh.hops(0, 2) == 2

    def test_regular_degree_four(self):
        arch = Torus2D(3, 4)
        assert all(arch.degree(p) == 4 for p in arch.processors)

    def test_too_small(self):
        with pytest.raises(ArchitectureError):
            Torus2D(2, 4)


class TestHypercube:
    def test_hamming_distance(self):
        arch = Hypercube(3)
        for a in range(8):
            for b in range(8):
                assert arch.hops(a, b) == bin(a ^ b).count("1")

    def test_sizes(self):
        assert Hypercube(0).num_pes == 1
        assert Hypercube(3).num_pes == 8
        assert Hypercube(4).num_pes == 16

    def test_diameter_is_dimension(self):
        assert Hypercube(4).diameter == 4

    def test_bit_label(self):
        assert Hypercube(3).bit_label(5) == "101"

    def test_rejects_huge(self):
        with pytest.raises(ArchitectureError):
            Hypercube(20)


class TestStarTree:
    def test_star_distances(self):
        arch = Star(5)
        assert arch.hops(0, 3) == 1
        assert arch.hops(1, 4) == 2
        assert arch.hub == 0

    def test_star_too_small(self):
        with pytest.raises(ArchitectureError):
            Star(1)

    def test_tree_size(self):
        arch = BalancedTree(2, 2)
        assert arch.num_pes == 7
        assert arch.root == 0

    def test_tree_parent(self):
        arch = BalancedTree(2, 2)
        assert arch.parent(0) is None
        assert arch.parent(1) == 0
        assert arch.parent(6) == 2

    def test_tree_leaf_to_leaf(self):
        arch = BalancedTree(2, 2)
        assert arch.hops(3, 6) == 4  # up to root, down again
