"""Unit tests for the anticipation function AN and the projected
schedule length PSL."""

import pytest

from repro.arch import CompletelyConnected, LinearArray
from repro.core import (
    anticipated_start,
    latest_finish,
    projected_schedule_length,
    psl_edge_bound,
)
from repro.errors import InfeasibleScheduleError
from repro.graph import CSDFG
from repro.schedule import ScheduleTable


@pytest.fixture
def pair_delayed():
    """u -> v with one delay and volume 2."""
    g = CSDFG("g")
    g.add_node("u", 1)
    g.add_node("v", 1)
    g.add_edge("u", "v", 1, 2)
    return g


class TestAnticipatedStart:
    def test_derivation(self, pair_delayed):
        arch = LinearArray(3)
        s = ScheduleTable(3)
        s.place("u", 0, 4, 1)  # CE(u) = 4
        # AN(v, pe2) with L_target = 5: CE + M + 1 - d*L = 4 + 4 + 1 - 5 = 4
        assert anticipated_start(pair_delayed, arch, s, "v", 2, 5) == 4

    def test_clamped_to_one(self, pair_delayed):
        arch = LinearArray(3)
        s = ScheduleTable(3)
        s.place("u", 0, 1, 1)
        assert anticipated_start(pair_delayed, arch, s, "v", 0, 10) == 1

    def test_same_pe_no_comm(self, pair_delayed):
        arch = LinearArray(3)
        s = ScheduleTable(3)
        s.place("u", 0, 4, 1)
        # same PE: M = 0 -> 4 + 0 + 1 - 5 = 0 -> clamp 1
        assert anticipated_start(pair_delayed, arch, s, "v", 0, 5) == 1

    def test_unplaced_producer_ignored(self, pair_delayed):
        arch = LinearArray(3)
        s = ScheduleTable(3)
        assert anticipated_start(pair_delayed, arch, s, "v", 1, 5) == 1

    def test_zero_delay_edge_dominates(self):
        g = CSDFG("g")
        g.add_node("u", 2)
        g.add_node("v", 1)
        g.add_edge("u", "v", 0, 3)
        arch = LinearArray(2)
        s = ScheduleTable(2)
        s.place("u", 0, 1, 2)  # CE = 2
        # cross-PE: 2 + 3 + 1 - 0 = 6 regardless of target length
        assert anticipated_start(g, arch, s, "v", 1, 100) == 6

    def test_decreases_with_target_length(self, pair_delayed):
        arch = LinearArray(3)
        s = ScheduleTable(3)
        s.place("u", 0, 6, 1)
        an5 = anticipated_start(pair_delayed, arch, s, "v", 2, 5)
        an7 = anticipated_start(pair_delayed, arch, s, "v", 2, 7)
        assert an7 <= an5


class TestLatestFinish:
    def test_bound_from_consumer(self):
        g = CSDFG("g")
        g.add_node("u", 1)
        g.add_node("v", 1)
        g.add_edge("v", "u", 0, 2)  # v produces for u in-iteration
        arch = LinearArray(2)
        s = ScheduleTable(2)
        s.place("u", 1, 8, 1)  # CB(u) = 8
        # CE(v) <= CB(u) + 0*L - M - 1 = 8 - 2 - 1 = 5 (cross-PE)
        assert latest_finish(g, arch, s, "v", 0, 5) == 5
        # same PE: 8 - 0 - 1 = 7
        assert latest_finish(g, arch, s, "v", 1, 5) == 7

    def test_unbounded_sentinel(self, pair_delayed):
        arch = LinearArray(2)
        s = ScheduleTable(2)
        assert latest_finish(pair_delayed, arch, s, "u", 0, 5) > 10**9

    def test_delayed_edges_suppressed(self, pair_delayed):
        arch = LinearArray(2)
        s = ScheduleTable(2)
        s.place("v", 1, 1, 1)
        bounded = latest_finish(pair_delayed, arch, s, "u", 0, 3)
        assert bounded < 10**9
        free = latest_finish(pair_delayed, arch, s, "u", 0, 3, unbounded={1})
        assert free > 10**9


class TestPsl:
    def test_edge_bound_formula(self):
        # L >= ceil((CE + M + 1 - CB) / d)
        assert psl_edge_bound(finish_u=4, start_v=1, comm=4, delay=1) == 8
        assert psl_edge_bound(finish_u=4, start_v=1, comm=4, delay=2) == 4
        assert psl_edge_bound(finish_u=4, start_v=1, comm=4, delay=3) == 3

    def test_edge_bound_requires_delay(self):
        with pytest.raises(InfeasibleScheduleError):
            psl_edge_bound(1, 1, 1, 0)

    def test_projected_length(self, pair_delayed):
        arch = LinearArray(2)
        s = ScheduleTable(2)
        s.place("u", 0, 1, 1)
        s.place("v", 1, 1, 1)
        # CB(v) + L >= CE(u) + 2 + 1 -> L >= 3
        assert projected_schedule_length(pair_delayed, arch, s) == 3

    def test_infeasible_zero_delay(self):
        g = CSDFG("g")
        g.add_node("u", 1)
        g.add_node("v", 1)
        g.add_edge("u", "v", 0, 1)
        arch = CompletelyConnected(2)
        s = ScheduleTable(2)
        s.place("u", 0, 2, 1)
        s.place("v", 1, 1, 1)
        with pytest.raises(InfeasibleScheduleError):
            projected_schedule_length(g, arch, s)

    def test_matches_paper_lemma_plus_one(self):
        # the paper's Lemma 4.3 says ceil((M + CE - CB) / k); our
        # validator-consistent form adds 1 to M + CE - CB (DESIGN.md §2)
        ce_u, cb_v, m, k = 6, 2, 4, 2
        paper_value = -(-(m + ce_u - cb_v) // k)
        ours = psl_edge_bound(ce_u, cb_v, m, k)
        assert ours == paper_value or ours == paper_value + 1
        assert ours == -(-(ce_u + m + 1 - cb_v) // k)
