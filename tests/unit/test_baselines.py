"""Unit tests for the baseline schedulers and analytic bounds."""

import math

from repro.arch import CompletelyConnected, LinearArray, Mesh2D
from repro.baselines import (
    comm_rotation_schedule,
    oblivious_list_schedule,
    rotation_schedule,
    schedule_bounds,
    sequential_schedule,
)
from repro.core import CycloConfig, cyclo_compact
from repro.graph import CSDFG, scale_volumes
from repro.schedule import is_valid_schedule


class TestSequential:
    def test_length_is_total_work(self, figure1):
        arch = CompletelyConnected(4)
        s = sequential_schedule(figure1, arch)
        assert s.makespan == figure1.total_work()
        assert is_valid_schedule(figure1, arch, s)

    def test_everything_on_pe0(self, figure7):
        s = sequential_schedule(figure7, LinearArray(8))
        assert all(p.pe == 0 for p in s.placements())


class TestBounds:
    def test_brackets(self, figure1, mesh2x2):
        b = schedule_bounds(figure1, mesh2x2)
        assert b.iteration_bound == 3
        assert b.critical_path == 6
        assert b.work_bound == 2  # ceil(8 / 4)
        assert b.sequential == 8
        assert b.lower == 3

    def test_schedulers_respect_bounds(self, figure7):
        arch = CompletelyConnected(8)
        b = schedule_bounds(figure7, arch)
        result = cyclo_compact(figure7, arch)
        assert result.final_length >= math.ceil(b.iteration_bound)
        assert result.final_length >= b.work_bound


class TestObliviousList:
    def test_penalty_on_distant_architecture(self):
        # a comm-heavy fork-join where ignoring comm hurts
        g = CSDFG("hot")
        g.add_node("a", 1)
        for i in range(4):
            g.add_node(f"b{i}", 2)
            g.add_edge("a", f"b{i}", 0, 4)
        g.add_node("z", 1)
        for i in range(4):
            g.add_edge(f"b{i}", "z", 0, 4)
        g.add_edge("z", "a", 1, 1)
        arch = LinearArray(5)
        base = oblivious_list_schedule(g, arch)
        assert (not base.feasible) or base.claimed_length <= base.actual_length

    def test_feasible_on_its_decision_model(self, figure7):
        base = oblivious_list_schedule(figure7, Mesh2D(2, 4))
        # claimed schedule is valid with zero comm by construction
        from repro.arch import ZeroCommModel

        zero = Mesh2D(2, 4).with_comm_model(ZeroCommModel())
        assert is_valid_schedule(figure7, zero, base.schedule)

    def test_penalty_property(self, figure7):
        base = oblivious_list_schedule(figure7, LinearArray(8))
        if base.feasible:
            assert base.penalty == base.actual_length - base.claimed_length
        else:
            assert base.penalty is None


class TestRotationBaseline:
    def test_runs_and_reports(self, figure1, mesh2x2):
        cfg = CycloConfig(max_iterations=10, validate_each_step=False)
        base = rotation_schedule(figure1, mesh2x2, config=cfg)
        assert base.claimed_length >= 1
        # evaluation either succeeds with >= claimed, or is infeasible
        assert base.actual_length is None or (
            base.actual_length >= base.claimed_length
        )

    def test_cyclo_beats_or_ties_oblivious_rotation(self, figure7):
        arch = LinearArray(8)
        cfg = CycloConfig(max_iterations=30, validate_each_step=False)
        ours = cyclo_compact(figure7, arch, config=cfg).final_length
        theirs = rotation_schedule(figure7, arch, config=cfg).actual_length
        assert theirs is None or ours <= theirs


class TestCommRotationBaseline:
    def test_matches_cyclo_on_complete(self, figure1):
        arch = CompletelyConnected(4)
        cfg = CycloConfig(max_iterations=20, validate_each_step=False)
        ours = cyclo_compact(figure1, arch, config=cfg).final_length
        base = comm_rotation_schedule(figure1, arch, config=cfg)
        assert base.actual_length == base.claimed_length == ours

    def test_underestimates_on_linear(self, figure7):
        heavy = scale_volumes(figure7, 3)
        arch = LinearArray(8)
        cfg = CycloConfig(max_iterations=25, validate_each_step=False)
        base = comm_rotation_schedule(heavy, arch, config=cfg)
        # topology-blind decisions cannot beat their own claim once
        # multi-hop costs are charged
        assert base.actual_length is None or (
            base.actual_length >= base.claimed_length
        )
