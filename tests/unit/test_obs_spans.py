"""Unit tests for hierarchical spans (repro.obs.spans)."""

import time

from repro.obs import (
    NO_OP_SPAN,
    InMemorySink,
    enabled,
    sink_installed,
    span,
)


class TestDisabledPath:
    def test_disabled_by_default(self):
        assert not enabled()

    def test_span_is_shared_noop_without_sink(self):
        sp = span("anything", key="value")
        assert sp is NO_OP_SPAN
        assert span("other") is sp  # no allocation per call

    def test_noop_span_contextmanager_and_add(self):
        with span("nope") as sp:
            sp.add(counter=3)  # must be accepted and dropped


class TestLiveSpans:
    def test_emits_one_event_per_span(self):
        sink = InMemorySink()
        with sink_installed(sink):
            with span("outer"):
                with span("inner"):
                    pass
        names = [e["name"] for e in sink.spans()]
        # children exit (and emit) before their parents
        assert names == ["inner", "outer"]

    def test_nesting_depth(self):
        sink = InMemorySink()
        with sink_installed(sink):
            with span("a"):
                with span("b"):
                    with span("c"):
                        pass
                with span("b2"):
                    pass
        depth = {e["name"]: e["depth"] for e in sink.spans()}
        assert depth == {"a": 0, "b": 1, "c": 2, "b2": 1}

    def test_timing_monotonicity_and_containment(self):
        sink = InMemorySink()
        with sink_installed(sink):
            with span("outer"):
                time.sleep(0.001)
                with span("inner"):
                    time.sleep(0.001)
                time.sleep(0.001)
        by_name = {e["name"]: e for e in sink.spans()}
        outer, inner = by_name["outer"], by_name["inner"]
        assert outer["dur_ns"] > 0 and inner["dur_ns"] > 0
        # the child's interval lies within the parent's
        assert inner["start_ns"] >= outer["start_ns"]
        assert (inner["start_ns"] + inner["dur_ns"]
                <= outer["start_ns"] + outer["dur_ns"])
        # and the parent strictly contains the child's duration
        assert outer["dur_ns"] >= inner["dur_ns"]

    def test_sequential_spans_do_not_overlap(self):
        sink = InMemorySink()
        with sink_installed(sink):
            with span("first"):
                pass
            with span("second"):
                pass
        first, second = sink.spans()
        assert first["name"] == "first"
        assert second["start_ns"] >= first["start_ns"] + first["dur_ns"]

    def test_attrs_at_open_and_via_add(self):
        sink = InMemorySink()
        with sink_installed(sink):
            with span("work", kind="test") as sp:
                sp.add(items=7)
        (event,) = sink.spans()
        assert event["attrs"] == {"kind": "test", "items": 7}

    def test_exception_recorded_and_depth_restored(self):
        sink = InMemorySink()
        with sink_installed(sink):
            try:
                with span("boom"):
                    raise ValueError("x")
            except ValueError:
                pass
            with span("after"):
                pass
        boom, after = sink.spans()
        assert boom["attrs"]["error"] == "ValueError"
        assert after["depth"] == 0
