"""CommCostCache cross-checked against the uncached hop-cost path.

Satellite of the qa PR: the fast-path ``M`` tables must agree with
``arch.comm_cost`` (and with a by-hand ``hops -> cost-model`` walk) on
every PE pair, every volume, every registered topology kind — healthy
and degraded.  A divergence here is exactly the bug class the fuzzer's
differential oracle exists to catch; this pins it deterministically.
"""

import pytest

from repro.arch import ARCHITECTURE_KINDS, make_architecture
from repro.arch.cache import CommCostCache
from repro.arch.degraded import DegradedTopology
from repro.errors import DeadProcessorError
from repro.qa import sample_graph

# one valid PE count per registered kind (tori need >= 3 per dimension,
# hypercubes powers of two, balanced trees 2**k - 1, permutation-group
# Cayley kinds factorials)
KIND_SIZES = {
    "linear": 4,
    "ring": 5,
    "complete": 4,
    "mesh": 6,
    "torus": 9,
    "hypercube": 8,
    "star": 5,
    "tree": 7,
    "circulant": 8,
    "cayley-star": 6,
    "cayley-bubble": 6,
    "pancake": 6,
}

VOLUMES = (1, 2, 3, 5)


def _assert_matches_direct(arch, cache):
    for volume in VOLUMES:
        for src in arch.processors:
            for dst in arch.processors:
                expected = arch.comm_cost(src, dst, volume)
                assert cache.cost(src, dst, volume) == expected
                # and against the definition itself: M(hops, volume)
                assert expected == arch.comm_model.cost(
                    arch.hops(src, dst), volume
                )


class TestAllKindsHealthy:
    def test_registry_and_size_table_agree(self):
        assert set(KIND_SIZES) == set(ARCHITECTURE_KINDS)

    @pytest.mark.parametrize("kind", sorted(KIND_SIZES))
    def test_cache_matches_direct_costs(self, kind):
        arch = make_architecture(kind, KIND_SIZES[kind])
        cache = CommCostCache(arch, VOLUMES)
        assert cache.volumes == frozenset(VOLUMES)
        _assert_matches_direct(arch, cache)

    @pytest.mark.parametrize("kind", sorted(KIND_SIZES))
    def test_local_messages_are_free(self, kind):
        arch = make_architecture(kind, KIND_SIZES[kind])
        cache = CommCostCache(arch, (1,))
        for pe in arch.processors:
            assert cache.cost(pe, pe, 1) == 0


class TestDegraded:
    @pytest.mark.parametrize("kind", ["ring", "complete", "mesh", "star"])
    def test_cache_matches_on_survivors(self, kind):
        base = make_architecture(kind, KIND_SIZES[kind])
        victim = KIND_SIZES[kind] - 1  # leaf/edge PE keeps things connected
        arch = DegradedTopology(base, failed_pes=(victim,))
        cache = CommCostCache(arch, VOLUMES)
        _assert_matches_direct(arch, cache)

    def test_dead_pe_raises_like_the_uncached_path(self):
        base = make_architecture("complete", 4)
        arch = DegradedTopology(base, failed_pes=(2,))
        cache = CommCostCache(arch, (1,))
        with pytest.raises(DeadProcessorError):
            cache.cost(0, 2, 1)
        with pytest.raises(DeadProcessorError):
            cache.cost(2, 0, 1)


class TestStats:
    def test_warm_lookup_raises_hit_rate(self):
        arch = make_architecture("hypercube", 8)
        cache = CommCostCache(arch, (1,))
        assert cache.hits == cache.misses == 0
        assert cache.hit_rate == 0.0
        cache.cost(0, 5, 7)  # uncached volume: a miss
        cold_rate = cache.hit_rate
        cache.cost(0, 5, 1)  # warm lookup served from the tables
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.hit_rate > cold_rate
        cache.cost(0, 5, 1)
        assert cache.hit_rate == pytest.approx(2 / 3)

    def test_entries_grow_lazily_per_touched_band(self):
        arch = make_architecture("ring", 5)
        cache = CommCostCache(arch, (1, 2))
        # rows are built on first touch, one (src, volume) band at a time
        assert cache.entries == 0
        cache.cost(0, 3, 1)
        assert cache.entries == 5
        cache.cost(0, 4, 1)  # same band: no new entries
        assert cache.entries == 5
        cache.cost(2, 0, 2)  # other volume: its own band
        assert cache.entries == 10
        # a full warm sweep materialises at most every band once
        for vol in (1, 2):
            for src in arch.processors:
                for dst in arch.processors:
                    cache.cost(src, dst, vol)
        assert cache.entries == 2 * 5 * 5

    def test_row_build_is_neither_hit_nor_miss(self):
        arch = make_architecture("ring", 5)
        cache = CommCostCache(arch, (1,))
        assert cache.row_from(0, 1) is not None
        assert cache.row_to(1, 1) is not None
        assert cache.hits == cache.misses == 0
        assert cache.entries == 10

    def test_stats_dict(self):
        arch = make_architecture("complete", 4)
        cache = CommCostCache(arch, (1,))
        cache.cost(0, 1, 1)
        cache.cost(0, 1, 9)
        assert cache.stats() == {
            "hits": 1,
            "misses": 1,
            "entries": 4,
            "hit_rate": 0.5,
        }

    def test_publish_stats_lands_in_registry(self):
        from repro.obs import InMemorySink, metrics, sink_installed

        arch = make_architecture("complete", 4)
        cache = CommCostCache(arch, (1,))
        cache.cost(0, 1, 1)
        cache.cost(0, 1, 1)
        cache.cost(0, 1, 9)
        with sink_installed(InMemorySink()):
            cache.publish_stats()
        snap = metrics.snapshot()
        assert snap["counters"]["arch.cache.hits"] == 2
        assert snap["counters"]["arch.cache.misses"] == 1
        assert snap["gauges"]["arch.cache.entries"]["value"] == 4
        assert snap["gauges"]["arch.cache.hit_rate"]["value"] == pytest.approx(
            2 / 3, abs=1e-6
        )

    def test_publish_stats_noop_while_disabled(self):
        from repro.obs import metrics

        arch = make_architecture("complete", 4)
        cache = CommCostCache(arch, (1,))
        cache.cost(0, 1, 1)
        cache.publish_stats()
        assert metrics.snapshot()["counters"] == {}


class TestFallbacks:
    def test_uncached_volume_defers_to_arch(self):
        arch = make_architecture("mesh", 4)
        cache = CommCostCache(arch, (1,))
        assert cache.cost(0, 3, 7) == arch.comm_cost(0, 3, 7)

    def test_for_graph_covers_every_edge_volume(self):
        graph = sample_graph(11)
        arch = make_architecture("ring", 4)
        cache = CommCostCache.for_graph(arch, graph)
        assert {e.volume for e in graph.edges()} <= cache.volumes

    def test_row_views_agree_with_point_lookups(self):
        arch = make_architecture("hypercube", 8)
        cache = CommCostCache(arch, (2,))
        for src in arch.processors:
            row = cache.row_from(src, 2)
            col_of = [cache.row_to(dst, 2)[src] for dst in arch.processors]
            assert row is not None
            assert [row[dst] for dst in arch.processors] == col_of
            for dst in arch.processors:
                assert row[dst] == cache.cost(src, dst, 2)
