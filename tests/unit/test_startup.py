"""Unit tests for the start-up (communication-aware list) scheduler."""

import pytest

from repro.arch import CompletelyConnected, LinearArray, Mesh2D
from repro.core import start_up_schedule
from repro.core.priority import fifo_priority
from repro.errors import SchedulingError
from repro.graph import CSDFG
from repro.schedule import is_valid_schedule, validate_schedule


class TestFigure1Exact:
    """The paper's §3 walk-through, cell by cell (Figure 6(b))."""

    def test_length_seven(self, figure1, mesh2x2):
        s = start_up_schedule(figure1, mesh2x2)
        assert s.length == 7

    def test_pe1_chain(self, figure1, mesh2x2):
        s = start_up_schedule(figure1, mesh2x2)
        assert s.processor("A") == 0 and s.start("A") == 1
        assert s.processor("B") == 0 and s.start("B") == 2
        assert s.processor("D") == 0 and s.start("D") == 4
        assert s.processor("E") == 0 and s.start("E") == 5
        assert s.processor("F") == 0 and s.start("F") == 7

    def test_c_deferred_by_comm_cost(self, figure1, mesh2x2):
        # comm from A forces C to cs3 on a neighbouring PE (paper: PE2)
        s = start_up_schedule(figure1, mesh2x2)
        assert s.start("C") == 3
        assert s.processor("C") != 0
        assert mesh2x2.hops(0, s.processor("C")) == 1

    def test_valid(self, figure1, mesh2x2):
        validate_schedule(figure1, mesh2x2, start_up_schedule(figure1, mesh2x2))


class TestGeneralBehaviour:
    def test_single_pe_serialises(self, figure1):
        arch = CompletelyConnected(1)
        s = start_up_schedule(figure1, arch)
        assert s.length >= figure1.total_work()
        assert is_valid_schedule(figure1, arch, s)

    def test_empty_graph_rejected(self):
        with pytest.raises(SchedulingError):
            start_up_schedule(CSDFG(), CompletelyConnected(2))

    def test_all_workloads_valid(self, figure7):
        for arch in (CompletelyConnected(4), LinearArray(4), Mesh2D(2, 2)):
            s = start_up_schedule(figure7, arch)
            assert is_valid_schedule(figure7, arch, s)

    def test_alternative_priority_still_valid(self, figure7):
        arch = Mesh2D(2, 2)
        s = start_up_schedule(figure7, arch, priority=fifo_priority)
        assert is_valid_schedule(figure7, arch, s)

    def test_padding_for_delayed_edges(self):
        # u -> v same iteration on one PE is tight, but the loop-carried
        # v -> u edge with a big volume forces padding when split
        g = CSDFG("pad")
        g.add_node("u", 1)
        g.add_node("v", 1)
        g.add_edge("u", "v", 0, 1)
        g.add_edge("v", "u", 1, 6)
        arch = LinearArray(2)
        s = start_up_schedule(g, arch)
        assert is_valid_schedule(g, arch, s)

    def test_padding_can_be_disabled(self):
        g = CSDFG("pad")
        g.add_node("u", 1)
        g.add_node("v", 1)
        g.add_edge("u", "v", 0, 1)
        g.add_edge("v", "u", 1, 6)
        arch = LinearArray(2)
        raw = start_up_schedule(g, arch, pad_for_delayed_edges=False)
        assert raw.length == raw.makespan

    def test_parallel_roots_spread(self):
        g = CSDFG("roots")
        for n in "abcd":
            g.add_node(n, 1)
            g.add_edge(n, n, 1, 1)  # keep nodes in cycles (self loops)
        arch = CompletelyConnected(4)
        s = start_up_schedule(g, arch)
        assert s.makespan == 1  # four roots, four PEs, no dependences
        assert len({s.processor(n) for n in "abcd"}) == 4

    def test_respects_multicycle_occupancy(self, figure1, mesh2x2):
        s = start_up_schedule(figure1, mesh2x2)
        # B occupies two consecutive cells on its PE
        pe = s.processor("B")
        assert s.cell(pe, 2) == "B" and s.cell(pe, 3) == "B"
