"""Unit tests for the RA4xx schedule certificate checker.

The checker is the third independent implementation of the DESIGN §1
criterion, so every test cross-checks its verdict against the runtime
validator: they must agree on legal *and* on broken schedules.
"""

import pytest

from repro.analyze import certify_schedule
from repro.arch import make_architecture
from repro.arch.degraded import DegradedTopology
from repro.core import CycloConfig, cyclo_compact
from repro.graph import CSDFG
from repro.schedule import ScheduleTable, collect_violations


def codes(diags):
    return sorted(d.code for d in diags)


def errors(diags):
    return [d for d in diags if d.severity == "error"]


@pytest.fixture
def chain():
    """a -> b same-volume chain with a loop-back delay."""
    g = CSDFG("chain")
    g.add_node("a", 2)
    g.add_node("b", 1)
    g.add_edge("a", "b", 0, 2)
    g.add_edge("b", "a", 1, 1)
    return g


class TestCleanCertificates:
    def test_compacted_schedule_certifies(self, figure1, mesh2x2):
        cfg = CycloConfig(max_iterations=8, validate_each_step=False)
        result = cyclo_compact(figure1, mesh2x2, config=cfg)
        found = certify_schedule(result.graph, mesh2x2, result.schedule)
        assert errors(found) == []
        assert collect_violations(result.graph, mesh2x2, result.schedule) == []

    def test_certifies_on_degraded_machines(self, figure1):
        arch = DegradedTopology(make_architecture("mesh", 4), failed_pes=(3,))
        cfg = CycloConfig(max_iterations=4, validate_each_step=False)
        result = cyclo_compact(figure1, arch, config=cfg)
        assert errors(
            certify_schedule(result.graph, arch, result.schedule)
        ) == []

    def test_slack_is_reported_as_ra405(self, chain):
        arch = make_architecture("linear", 2)
        table = ScheduleTable(2, length=50)
        table.place("a", pe=0, start=1, duration=2)
        table.place("b", pe=0, start=3, duration=1)
        found = certify_schedule(chain, arch, table)
        assert errors(found) == []
        assert codes(found) == ["RA405"]
        assert collect_violations(chain, arch, table) == []


class TestBrokenSchedules:
    def arch(self):
        return make_architecture("linear", 2)

    def test_missing_node_is_ra401(self, chain):
        table = ScheduleTable(2, length=10)
        table.place("a", pe=0, start=1, duration=2)
        found = certify_schedule(chain, self.arch(), table)
        assert "RA401" in codes(found)
        assert collect_violations(chain, self.arch(), table)

    def test_foreign_node_is_ra401(self, chain):
        table = ScheduleTable(2, length=10)
        table.place("a", pe=0, start=1, duration=2)
        table.place("b", pe=0, start=3, duration=1)
        table.place("zz", pe=1, start=1, duration=1)
        assert "RA401" in codes(certify_schedule(chain, self.arch(), table))

    def test_overlap_is_ra402(self, chain):
        from repro.schedule.table import Placement

        table = ScheduleTable(2, length=10)
        table.place("a", pe=0, start=1, duration=2)
        # bypass the table's cell index to simulate a corrupted table:
        # b lands inside a's occupancy window
        table._placements["b"] = Placement("b", 0, 2, 1)
        found = certify_schedule(chain, self.arch(), table)
        assert "RA402" in codes(found)
        assert collect_violations(chain, self.arch(), table)

    def test_pipelined_overlap_is_allowed(self, chain):
        # on pipelined PEs only the issue step must be exclusive, but
        # the cross-PE message b -> a (delay 1) must still be priced:
        # keep them co-located
        table = ScheduleTable(2, length=10)
        table.place("a", pe=0, start=1, duration=2, occupancy=1)
        table.place("b", pe=0, start=3, duration=1)
        found = certify_schedule(
            chain, self.arch(), table, pipelined_pes=True
        )
        assert errors(found) == []

    def test_comm_violation_is_ra403(self, chain):
        # a(pe1) finishes at cs 2; b(pe2) at cs 3 ignores the one-hop
        # transit of the 2-word message (M = 2)
        table = ScheduleTable(2, length=10)
        table.place("a", pe=0, start=1, duration=2)
        table.place("b", pe=1, start=3, duration=1)
        found = certify_schedule(chain, self.arch(), table)
        assert "RA403" in codes(found)
        assert collect_violations(chain, self.arch(), table)

    def test_same_pe_needs_no_transit(self, chain):
        table = ScheduleTable(2, length=10)
        table.place("a", pe=0, start=1, duration=2)
        table.place("b", pe=0, start=3, duration=1)
        assert errors(certify_schedule(chain, self.arch(), table)) == []

    def test_delay_edge_wraps_around_the_length(self, chain):
        # b -> a carries one delay: legal only because d * L covers it;
        # shrink L below the wrap requirement and RA403 must fire
        table = ScheduleTable(2, length=2)
        table.place("a", pe=0, start=1, duration=2)
        table.place("b", pe=1, start=1, duration=1)
        found = certify_schedule(chain, self.arch(), table)
        assert "RA403" in codes(found)
        assert collect_violations(chain, self.arch(), table)

    def test_out_of_range_pe_is_ra404(self, chain):
        table = ScheduleTable(5, length=10)
        table.place("a", pe=4, start=1, duration=2)
        table.place("b", pe=0, start=3, duration=1)
        found = certify_schedule(chain, self.arch(), table)
        assert "RA404" in codes(found)
        assert collect_violations(chain, self.arch(), table)

    def test_failed_pe_is_ra404(self, chain):
        arch = DegradedTopology(
            make_architecture("complete", 3), failed_pes=(2,)
        )
        table = ScheduleTable(3, length=10)
        table.place("a", pe=2, start=1, duration=2)
        table.place("b", pe=0, start=4, duration=1)
        found = certify_schedule(chain, arch, table)
        assert "RA404" in codes(found)
        assert collect_violations(chain, arch, table)

    def test_wrong_duration_is_ra404(self, chain):
        table = ScheduleTable(2, length=10)
        table.place("a", pe=0, start=1, duration=1)  # t(a) = 2
        table.place("b", pe=0, start=3, duration=1)
        found = certify_schedule(chain, self.arch(), table)
        assert "RA404" in codes(found)
        assert collect_violations(chain, self.arch(), table)

    def test_finish_beyond_length_is_ra404(self, chain):
        table = ScheduleTable(2, length=10)
        table.place("a", pe=0, start=1, duration=2)
        table.place("b", pe=0, start=10, duration=1)
        table._length = 9  # sabotage: bypass the setter guard
        found = certify_schedule(chain, self.arch(), table)
        assert "RA404" in codes(found)
        assert collect_violations(chain, self.arch(), table)


class TestValidatorAgreement:
    """Fuzz-lite: the certificate and the validator agree verdict for
    verdict over many seeded samples (the `analyzer-agrees` fuzz
    property runs the same comparison at scale)."""

    def test_agreement_over_samples(self):
        from repro.qa import sample_graph
        from repro.qa.generate import sample_arch_spec

        cfg = CycloConfig(max_iterations=3, validate_each_step=False)
        for seed in range(12):
            graph = sample_graph(seed)
            arch = sample_arch_spec(seed, max_pes=6).build()
            result = cyclo_compact(graph, arch, config=cfg)
            for g, schedule in (
                (graph, result.initial_schedule),
                (result.graph, result.schedule),
            ):
                validator = collect_violations(g, arch, schedule)
                certificate = errors(certify_schedule(g, arch, schedule))
                assert bool(validator) == bool(certificate), (
                    seed, validator, [d.render() for d in certificate]
                )
