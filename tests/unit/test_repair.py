"""Unit tests for degraded-topology schedule repair."""

import pytest

from repro.arch import (
    Circulant,
    CompletelyConnected,
    LinearArray,
    Mesh2D,
    Ring,
    SerializedContention,
)
from repro.core import CycloConfig, cyclo_compact, start_up_schedule
from repro.errors import DisconnectedTopologyError, InfeasibleScheduleError
from repro.graph import CSDFG
from repro.resilience import LinkFault, PEFault, degrade, repair_schedule
from repro.schedule import collect_violations
from repro.workloads import figure1_csdfg, figure7_csdfg


@pytest.fixture
def compacted():
    graph = figure1_csdfg()
    arch = Mesh2D(2, 4)
    result = cyclo_compact(
        graph, arch, config=CycloConfig(max_iterations=20)
    )
    return result.graph, arch, result.schedule


class TestDegrade:
    def test_builds_topology_from_faults(self):
        deg = degrade(Mesh2D(2, 4), [PEFault(1), LinkFault(2, 3)])
        assert deg.failed_pes == {1}
        assert deg.failed_links == {(2, 3)}

    def test_composes_on_degraded_input(self):
        first = degrade(Mesh2D(2, 4), [PEFault(0)])
        second = degrade(first, [PEFault(7)])
        assert second.failed_pes == {0, 7}

    def test_disconnection_is_typed(self):
        with pytest.raises(DisconnectedTopologyError):
            degrade(LinearArray(4), [LinkFault(1, 2)])


class TestRepairLegality:
    def test_pe_fault_repaired_legal(self, compacted):
        graph, arch, schedule = compacted
        used = {schedule.placement(v).pe for v in graph.nodes()}
        victim = sorted(used)[0]
        rep = repair_schedule(graph, arch, schedule, [PEFault(victim)])
        assert collect_violations(rep.graph, rep.degraded, rep.schedule) == []
        for node in rep.graph.nodes():
            assert rep.schedule.placement(node).pe != victim
        assert rep.strategy in ("local", "reoptimized")
        assert rep.moved  # the victim's tasks went somewhere else

    def test_unused_link_fault_is_noop(self, compacted):
        graph, arch, schedule = compacted
        # find a link neither used for placement adjacency nor routing:
        # on a compacted figure1 at least one mesh link is idle; probe
        # every link and require at least one noop repair
        strategies = set()
        for link in arch.links:
            try:
                rep = repair_schedule(
                    graph, arch, schedule, [LinkFault(*link)]
                )
            except (DisconnectedTopologyError, InfeasibleScheduleError):
                continue
            strategies.add(rep.strategy)
            assert (
                collect_violations(rep.graph, rep.degraded, rep.schedule)
                == []
            )
        assert "noop" in strategies

    def test_every_single_pe_fault_on_complete(self):
        graph = figure7_csdfg()
        arch = CompletelyConnected(4)
        schedule = start_up_schedule(graph, arch)
        for victim in arch.processors:
            rep = repair_schedule(graph, arch, schedule, [PEFault(victim)])
            assert (
                collect_violations(rep.graph, rep.degraded, rep.schedule)
                == []
            )
            assert rep.degraded.num_alive == 3

    def test_regression_is_measured(self, compacted):
        graph, arch, schedule = compacted
        used = {schedule.placement(v).pe for v in graph.nodes()}
        rep = repair_schedule(graph, arch, schedule, [PEFault(sorted(used)[0])])
        assert rep.original_length == schedule.length
        assert rep.repaired_length == rep.schedule.length
        assert rep.regression == rep.repaired_length / rep.original_length


class TestRepairFallbacks:
    def test_tight_regression_forces_reoptimize_comparison(self, compacted):
        graph, arch, schedule = compacted
        used = {schedule.placement(v).pe for v in graph.nodes()}
        # max_regression=0 makes every local repair "too long", so the
        # full re-optimisation always runs and the shorter result wins
        rep = repair_schedule(
            graph,
            arch,
            schedule,
            [PEFault(sorted(used)[0])],
            max_regression=0.0,
            reoptimize_config=CycloConfig(
                max_iterations=10, validate_each_step=False
            ),
        )
        assert collect_violations(rep.graph, rep.degraded, rep.schedule) == []

    def test_infeasible_is_typed(self):
        # single surviving PE, but the graph has a zero-delay self-loopish
        # structure needing more parallel time than one PE can give at
        # any length?  Simplest: two nodes, same control step forced by
        # a zero-delay chain longer than the schedule can stretch is
        # always paddable — instead make the machine too small: kill
        # every PE but one and give the survivor a same-step conflict
        # via pipelining constraints.  A 1-PE machine can always
        # serialise, so infeasibility must come from disconnection or
        # an over-constrained initial placement; assert the typed error
        # from the all-dead case instead.
        g = CSDFG("g")
        g.add_node("u", 1)
        with pytest.raises(DisconnectedTopologyError):
            repair_schedule(
                g,
                CompletelyConnected(2),
                start_up_schedule(g, CompletelyConnected(2)),
                [PEFault(0), PEFault(1)],
            )


class TestRepairAfterLinkCut:
    def test_ring_link_cut_repairs_legal(self):
        graph = figure1_csdfg()
        arch = Ring(4)
        schedule = start_up_schedule(graph, arch)
        for link in arch.links:
            rep = repair_schedule(graph, arch, schedule, [LinkFault(*link)])
            assert (
                collect_violations(rep.graph, rep.degraded, rep.schedule)
                == []
            )


class TestRepairUnderContention:
    """Regression for the contended-repricing fix: rerouted hops are
    priced under the contention model the caller repairs with, and the
    repaired schedule validates against that same pricing."""

    def compacted_on_circulant(self):
        graph = figure7_csdfg()
        arch = Circulant(8, steps=(1, 2))
        result = cyclo_compact(
            graph, arch, config=CycloConfig(max_iterations=20)
        )
        return result.graph, arch, result.schedule

    def test_link_kill_on_cayley_repairs_contended_legal(self):
        graph, arch, schedule = self.compacted_on_circulant()
        model = SerializedContention(weight=2)
        strategies = set()
        for link in arch.links:
            rep = repair_schedule(
                graph, arch, schedule, [LinkFault(*link)],
                contention=model,
            )
            strategies.add(rep.strategy)
            # legal under the contended cache the repair validated with
            assert (
                collect_violations(
                    rep.graph, rep.degraded, rep.schedule, comm=rep.comm
                )
                == []
            )
            # ...and under plain re-derived contended pricing too: the
            # returned occupancy matches the final placements
            if rep.comm is not None:
                assert rep.comm.contended
                assert rep.comm.occupancy.arch is rep.degraded
        # at least one cut actually forced a repair (not all noop)
        assert strategies - {"noop"}

    def test_pe_kill_on_cayley_repairs_contended_legal(self):
        graph, arch, schedule = self.compacted_on_circulant()
        used = {schedule.placement(v).pe for v in graph.nodes()}
        rep = repair_schedule(
            graph, arch, schedule, [PEFault(sorted(used)[0])],
            contention=SerializedContention(weight=3),
        )
        assert rep.strategy in ("local", "reoptimized")
        assert rep.comm is not None
        assert (
            collect_violations(
                rep.graph, rep.degraded, rep.schedule, comm=rep.comm
            )
            == []
        )

    def test_contention_free_repair_returns_no_cache(self):
        graph, arch, schedule = self.compacted_on_circulant()
        used = {schedule.placement(v).pe for v in graph.nodes()}
        rep = repair_schedule(graph, arch, schedule, [PEFault(sorted(used)[0])])
        assert rep.comm is None
