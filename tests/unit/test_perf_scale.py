"""Unit tests for the thousand-node scale tier (repro.perf.scale).

The full matrix belongs to ``benchmarks/test_bench_scale.py``; here we
pin the tier's *shape* on a downsized cell so the unit suite stays
fast: one instrumented measurement, its history record, the warm
cache-hit-rate tally, and quick/jobs behaviour of the matrix driver.
"""

from repro.obs.history import HistoryStore
from repro.perf.scale import (
    SCALE_MATRIX,
    ScaleCell,
    cache_hit_rate,
    run_scale_cell,
    run_scale_matrix,
)

# downsized: same code path as the 1k+ cells, unit-test wall-clock
SMALL = ScaleCell("layered", 60, "mesh", 4, 4, seed=5)


class TestMatrixShape:
    def test_pinned_matrix_covers_required_span(self):
        sizes = {c.size for c in SCALE_MATRIX}
        kinds = {c.arch_kind for c in SCALE_MATRIX}
        assert len(sizes & {1000, 2000, 5000, 10000}) >= 3
        assert len(kinds) >= 4
        assert all(c.passes >= 1 for c in SCALE_MATRIX)
        assert SCALE_MATRIX[0].size == 1000  # the quick/smoke cell

    def test_labels(self):
        assert SMALL.label == "layered-60@mesh4"


class TestRunScaleCell:
    def test_measurement_shape(self):
        row = run_scale_cell(SMALL)
        assert row["size"] == 60
        assert row["workload"] == "layered60-s5"
        assert row["arch"] == "mesh4"
        assert row["duration_seconds"] > 0
        assert row["nodes_per_second"] > 0
        assert row["final_length"] <= row["initial_length"]
        assert row["stop_reason"] == "completed"
        assert "startup" in row["phases"]
        assert row["counters"]["remap.nodes"] > 0

    def test_warm_cache_hit_rate_tallied(self):
        row = run_scale_cell(SMALL)
        # lazy rows count builds as neither hit nor miss, so a warm
        # run must stay >= 99% hits — the scale tier's acceptance bar
        assert cache_hit_rate(row["counters"]) >= 0.99

    def test_cache_hit_rate_of_empty_counters(self):
        assert cache_hit_rate({}) == 0.0


class TestRunScaleMatrix:
    def test_quick_takes_first_cell_only(self, tmp_path):
        rows, records = run_scale_matrix(
            tmp_path / "hist", matrix=[SMALL], quick=True
        )
        assert len(rows) == len(records) == 1
        rec = records[0]
        assert rec.kind == "scale"
        assert rec.attrs["nodes_per_second"] > 0
        assert rec.attrs["cache_hit_rate"] >= 0.99
        store = HistoryStore(tmp_path / "hist")
        assert store.kinds() == ["scale"]

    def test_no_history_dir_writes_nothing(self):
        rows, records = run_scale_matrix(None, matrix=[SMALL])
        assert len(rows) == 1 and records == []

    def test_jobs_do_not_change_measurement_results(self):
        serial, _ = run_scale_matrix(None, matrix=[SMALL, SMALL], jobs=1)
        sharded, _ = run_scale_matrix(None, matrix=[SMALL, SMALL], jobs=2)
        keys = [
            (r["initial_length"], r["final_length"], r["stop_reason"],
             r["counters"])
            for r in serial
        ]
        assert keys == [
            (r["initial_length"], r["final_length"], r["stop_reason"],
             r["counters"])
            for r in sharded
        ]
