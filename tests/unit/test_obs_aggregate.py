"""Hotspot stats, phase diffs, and regression detection."""

import pytest

from repro.obs.aggregate import (
    DiffRow,
    detect_regressions,
    diff_tables,
    fit_baselines,
    format_diff,
    format_regressions,
    hotspot_table,
    percentile,
    phase_totals,
    record_phases,
    trace_stats,
)
from repro.obs.history import RunRecord


def _span_event(name, start, dur, depth):
    return {
        "type": "span",
        "name": name,
        "start_ns": start,
        "dur_ns": dur,
        "depth": depth,
        "attrs": {},
    }


def _record(duration, *, kind="gate", workload="w", arch="a", cfg="h",
            phases=None):
    return RunRecord(
        kind=kind, workload=workload, arch=arch, config_hash=cfg,
        engine_version="1.0.0", timestamp=0.0,
        duration_seconds=duration, phases=phases or {},
    )


class TestPercentile:
    def test_nearest_rank(self):
        values = list(range(1, 101))
        assert percentile(values, 50) == 50
        assert percentile(values, 99) == 99

    def test_empty(self):
        assert percentile([], 50) is None

    def test_domain(self):
        with pytest.raises(ValueError):
            percentile([1], 0)


class TestTraceStats:
    EVENTS = [
        _span_event("root", 0, 100, 0),
        _span_event("a", 0, 60, 1),
        _span_event("a", 60, 30, 1),
    ]

    def test_ranked_by_self_time(self):
        stats = trace_stats(self.EVENTS)
        assert [s.name for s in stats] == ["a", "root"]
        a = stats[0]
        assert a.calls == 2
        assert a.self_ns == 90
        assert a.p50_ns == 30 and a.p99_ns == 60

    def test_hotspot_table_renders(self):
        text = hotspot_table(self.EVENTS)
        assert "| span |" in text and "| a |" in text

    def test_hotspot_table_empty(self):
        assert hotspot_table([]) == "(no spans recorded)"

    def test_hotspot_table_limit(self):
        text = hotspot_table(self.EVENTS, limit=1)
        assert "| a |" in text and "| root |" not in text


class TestDiff:
    def test_phase_totals(self):
        totals = phase_totals([
            _span_event("remap", 0, 2_000_000_000, 1),
            _span_event("remap", 0, 1_000_000_000, 1),
        ])
        assert totals == {"remap": pytest.approx(3.0)}

    def test_diff_union_of_phases(self):
        rows = diff_tables({"a": 1.0, "b": 2.0}, {"b": 3.0, "c": 4.0})
        assert [r.phase for r in rows] == ["a", "b", "c"]
        by = {r.phase: r for r in rows}
        assert by["b"].delta_seconds == pytest.approx(1.0)
        assert by["b"].ratio == pytest.approx(1.5)
        assert by["c"].ratio is None  # new phase

    def test_format_diff(self):
        text = format_diff(
            [DiffRow("remap", 1.0, 2.0)], a_label="old", b_label="new"
        )
        assert "| remap |" in text and "old" in text and "2.00" in text
        assert format_diff([]) == "(nothing to compare)"

    def test_record_phases_averages_window(self):
        recs = [
            _record(1.0, phases={"remap": 0.5}),
            _record(3.0, phases={"remap": 1.5}),
        ]
        assert record_phases(recs) == {
            "remap": pytest.approx(1.0),
            "total": pytest.approx(2.0),
        }
        assert record_phases([]) == {}


class TestRegressions:
    def test_identical_runs_no_regression(self):
        recs = [_record(1.0), _record(1.0)]
        assert detect_regressions(recs, threshold=1.3) == []

    def test_seeded_slowdown_detected(self):
        recs = [_record(1.0), _record(1.0), _record(1.0), _record(2.0)]
        found = detect_regressions(recs, threshold=1.3)
        assert len(found) == 1
        r = found[0]
        assert r.baseline_seconds == pytest.approx(1.0)
        assert r.latest_seconds == pytest.approx(2.0)
        assert r.ratio == pytest.approx(2.0)
        assert r.samples == 3

    def test_single_run_fits_no_baseline(self):
        assert detect_regressions([_record(5.0)], threshold=1.3) == []
        fit = fit_baselines([_record(5.0)])
        assert fit[("gate", "w", "a", "h")]["baseline"] is None

    def test_groups_isolated_by_provenance(self):
        # same workload, different config hash: no cross-contamination
        recs = [
            _record(1.0, cfg="old"),
            _record(10.0, cfg="new"),  # first run of the new config
        ]
        assert detect_regressions(recs, threshold=1.3) == []

    def test_min_seconds_suppresses_noise(self):
        recs = [_record(0.0001), _record(0.001)]
        assert detect_regressions(
            recs, threshold=1.3, min_seconds=0.01
        ) == []
        assert detect_regressions(recs, threshold=1.3, min_seconds=0.0)

    def test_threshold_domain(self):
        with pytest.raises(ValueError):
            detect_regressions([], threshold=1.0)

    def test_baseline_is_median_of_priors(self):
        recs = [_record(1.0), _record(100.0), _record(1.2), _record(1.3)]
        fit = fit_baselines(recs)[("gate", "w", "a", "h")]
        assert fit["baseline"] == pytest.approx(1.2)  # median, not mean
        assert fit["latest"] == pytest.approx(1.3)

    def test_format_regressions(self):
        recs = [_record(1.0), _record(1.0), _record(3.0)]
        found = detect_regressions(recs, threshold=1.3)
        text = format_regressions(found, checked=1)
        assert "1 regression(s)" in text and "3.00x" in text
        assert format_regressions([], checked=2) == (
            "no regressions across 2 run group(s)"
        )
