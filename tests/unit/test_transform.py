"""Unit tests for graph transformations."""

from fractions import Fraction

import pytest

from repro.errors import GraphError
from repro.graph import (
    is_legal,
    iteration_bound,
    merge_parallel_edges,
    reverse,
    scale_times,
    scale_volumes,
    slowdown,
    unfold,
    validate_csdfg,
)


class TestSlowdown:
    def test_delays_scaled(self, figure1):
        g = slowdown(figure1, 3)
        assert g.delay("D", "A") == 9
        assert g.delay("F", "E") == 3
        assert g.delay("A", "B") == 0

    def test_legality_preserved(self, figure7):
        validate_csdfg(slowdown(figure7, 4))

    def test_iteration_bound_divided(self, tiny_loop):
        base = iteration_bound(tiny_loop)
        assert iteration_bound(slowdown(tiny_loop, 2)) == base / 2

    def test_identity_factor(self, figure1):
        assert slowdown(figure1, 1).structurally_equal(figure1)

    def test_invalid_factor(self, figure1):
        with pytest.raises(GraphError):
            slowdown(figure1, 0)

    def test_original_untouched(self, figure1):
        slowdown(figure1, 2)
        assert figure1.delay("D", "A") == 3


class TestUnfold:
    def test_node_count(self, figure1):
        g = unfold(figure1, 3)
        assert g.num_nodes == 18

    def test_edge_count_preserved_per_copy(self, figure1):
        g = unfold(figure1, 2)
        # each original edge contributes exactly `factor` edges
        assert g.num_edges == 20

    def test_delay_distribution(self, tiny_loop):
        # b -> a with d=1 unfolded by 2: b#0 -> a#1 (d0), b#1 -> a#0 (d1)
        g = unfold(tiny_loop, 2)
        assert g.delay("b#0", "a#1") == 0
        assert g.delay("b#1", "a#0") == 1

    def test_total_delay_preserved(self, figure1):
        factor = 3
        g = unfold(figure1, factor)
        assert sum(e.delay for e in g.edges()) == sum(
            e.delay for e in figure1.edges()
        )

    def test_legality_preserved(self, figure7):
        validate_csdfg(unfold(figure7, 3))

    def test_iteration_bound_scales(self, tiny_loop):
        # unfolding by f multiplies the per-schedule-iteration bound by f
        assert iteration_bound(unfold(tiny_loop, 3)) == 3 * iteration_bound(
            tiny_loop
        )

    def test_custom_labels(self, tiny_loop):
        g = unfold(tiny_loop, 2, label=lambda v, i: (v, i))
        assert ("a", 0) in g

    def test_invalid_factor(self, tiny_loop):
        with pytest.raises(GraphError):
            unfold(tiny_loop, 0)


class TestMergeParallelEdges:
    def test_merges_min_delay_max_volume(self):
        merged = merge_parallel_edges(
            [("a", "b", 2, 1), ("a", "b", 1, 3), ("b", "c", 0, 1)]
        )
        assert ("a", "b", 1, 3) in merged
        assert ("b", "c", 0, 1) in merged
        assert len(merged) == 2

    def test_preserves_order(self):
        merged = merge_parallel_edges([("x", "y", 0, 1), ("a", "b", 0, 1)])
        assert merged[0][:2] == ("x", "y")


class TestReverseAndScaling:
    def test_reverse_edges(self, figure1):
        r = reverse(figure1)
        assert r.has_edge("B", "A")
        assert r.delay("A", "D") == 3
        assert r.num_edges == figure1.num_edges

    def test_double_reverse_identity(self, figure7):
        assert reverse(reverse(figure7)).structurally_equal(figure7)

    def test_scale_times(self, figure1):
        g = scale_times(figure1, 2)
        assert g.time("B") == 4
        assert g.time("A") == 2

    def test_scale_volumes(self, figure1):
        g = scale_volumes(figure1, 3)
        assert g.volume("D", "A") == 9
        assert g.delay("D", "A") == 3

    def test_scale_rejects_zero(self, figure1):
        with pytest.raises(GraphError):
            scale_times(figure1, 0)
        with pytest.raises(GraphError):
            scale_volumes(figure1, 0)

    def test_reverse_keeps_legality(self, figure7):
        assert is_legal(reverse(figure7))
