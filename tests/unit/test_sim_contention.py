"""Unit tests for the contention-aware network replay."""

import pytest

from repro.arch import CompletelyConnected, LinearArray
from repro.core import cyclo_compact, start_up_schedule
from repro.graph import CSDFG
from repro.schedule import ScheduleTable
from repro.sim import SimulationError, simulate_contended


def fan_in_graph(width=3, volume=2):
    """``width`` producers on distinct PEs all feed one consumer."""
    g = CSDFG("fanin")
    g.add_node("z", 1)
    for i in range(width):
        g.add_node(f"p{i}", 1)
        g.add_edge(f"p{i}", "z", 1, volume)
    g.add_edge("z", "z", 1, 1)
    return g


class TestNoContentionCases:
    def test_local_schedule_trivially_clean(self, figure1):
        arch = CompletelyConnected(4)
        s = ScheduleTable(4)
        cs = 1
        from repro.graph import topological_order_zero_delay

        for v in topological_order_zero_delay(figure1):
            s.place(v, 0, cs, figure1.time(v))
            cs += figure1.time(v)
        s.set_length(12)
        report = simulate_contended(figure1, arch, s, iterations=4)
        assert report.messages == []
        assert report.congestion_free

    def test_single_message_never_queues(self):
        g = CSDFG("pair")
        g.add_node("u", 1)
        g.add_node("v", 1)
        g.add_edge("u", "v", 1, 3)
        arch = LinearArray(3)
        s = ScheduleTable(3)
        s.place("u", 0, 1, 1)
        s.place("v", 2, 1, 1)
        s.set_length(8)
        report = simulate_contended(g, arch, s, iterations=4)
        assert all(m.queueing == 0 for m in report.messages)
        assert report.congestion_free


class TestContentionDetected:
    def test_fan_in_on_star_queues(self):
        # three producers on distinct leaves, consumer on another leaf:
        # every message shares the hub links
        from repro.arch import Star

        g = fan_in_graph(width=3, volume=2)
        arch = Star(5)
        s = ScheduleTable(5)
        for i in range(3):
            s.place(f"p{i}", i + 1, 1, 1)
        s.place("z", 4, 1, 1)
        s.set_length(20)  # generous: model-valid for sure
        report = simulate_contended(g, arch, s, iterations=3)
        assert report.total_queueing > 0

    def test_lateness_reported_when_tight(self):
        g = fan_in_graph(width=3, volume=2)
        from repro.arch import Star

        arch = Star(5)
        s = ScheduleTable(5)
        for i in range(3):
            s.place(f"p{i}", i + 1, 1, 1)
        s.place("z", 4, 1, 1)
        # minimum model-legal length: CB(z)+L >= CE(p)+M+1, M=2 hops*2w=4
        s.set_length(6)
        report = simulate_contended(g, arch, s, iterations=4)
        assert report.late_messages > 0
        assert report.max_lateness >= 1
        assert report.extra_length_needed == report.max_lateness


class TestOnRealWorkloads:
    def test_report_consistency(self, figure7):
        arch = LinearArray(8)
        result = cyclo_compact(figure7, arch)
        report = simulate_contended(
            result.graph, arch, result.schedule, iterations=5
        )
        assert report.late_messages == sum(
            1 for m in report.messages if m.lateness > 0
        )
        assert all(m.actual_arrival >= m.model_arrival for m in report.messages)

    def test_richer_topology_less_queueing(self, figure7):
        lin_res = cyclo_compact(figure7, LinearArray(8))
        com_res = cyclo_compact(figure7, CompletelyConnected(8))
        lin_rep = simulate_contended(
            lin_res.graph, LinearArray(8), lin_res.schedule, iterations=5
        )
        com_rep = simulate_contended(
            com_res.graph, CompletelyConnected(8), com_res.schedule, iterations=5
        )
        assert com_rep.total_queueing <= lin_rep.total_queueing

    def test_bad_iterations(self, figure1, mesh2x2):
        s = start_up_schedule(figure1, mesh2x2)
        with pytest.raises(SimulationError):
            simulate_contended(figure1, mesh2x2, s, iterations=0)
