"""Unit tests for the execution simulator."""

import pytest

from repro.arch import CompletelyConnected, LinearArray
from repro.core import cyclo_compact, start_up_schedule
from repro.graph import CSDFG
from repro.schedule import ScheduleTable
from repro.sim import SimulationError, simulate
from repro.workloads import figure1_csdfg, figure1_mesh


class TestExpansion:
    def test_instance_counts(self, figure1, mesh2x2):
        s = start_up_schedule(figure1, mesh2x2)
        sim = simulate(figure1, mesh2x2, s, iterations=5)
        assert len(sim.executions) == 5 * figure1.num_nodes
        assert sim.iterations == 5
        assert sim.schedule_length == s.length

    def test_instance_timing(self, figure1, mesh2x2):
        s = start_up_schedule(figure1, mesh2x2)
        sim = simulate(figure1, mesh2x2, s, iterations=3)
        e = sim.execution_of("B", 2)
        assert e.start == 2 * s.length + s.start("B")
        assert e.duration == 2

    def test_makespan(self, figure1, mesh2x2):
        s = start_up_schedule(figure1, mesh2x2)
        sim = simulate(figure1, mesh2x2, s, iterations=4)
        assert sim.makespan == 3 * s.length + s.makespan

    def test_throughput_approaches_rate(self, figure1, mesh2x2):
        s = start_up_schedule(figure1, mesh2x2)
        sim = simulate(figure1, mesh2x2, s, iterations=50)
        assert sim.throughput() == pytest.approx(1 / s.length, rel=0.05)

    def test_unknown_instance_raises(self, figure1, mesh2x2):
        s = start_up_schedule(figure1, mesh2x2)
        sim = simulate(figure1, mesh2x2, s, iterations=2)
        with pytest.raises(SimulationError):
            sim.execution_of("B", 7)

    def test_bad_iterations(self, figure1, mesh2x2):
        s = start_up_schedule(figure1, mesh2x2)
        with pytest.raises(SimulationError):
            simulate(figure1, mesh2x2, s, iterations=0)


class TestMessages:
    def test_local_schedule_no_messages(self):
        g = CSDFG("g")
        g.add_node("u", 1)
        g.add_node("v", 1)
        g.add_edge("u", "v", 0, 2)
        arch = LinearArray(2)
        s = ScheduleTable(2)
        s.place("u", 0, 1, 1)
        s.place("v", 0, 2, 1)
        sim = simulate(g, arch, s, iterations=3)
        assert sim.messages == []
        assert sim.total_comm_steps == 0

    def test_remote_message_latency(self):
        g = CSDFG("g")
        g.add_node("u", 1)
        g.add_node("v", 1)
        g.add_edge("u", "v", 1, 3)
        arch = LinearArray(3)
        s = ScheduleTable(3)
        s.place("u", 0, 1, 1)
        s.place("v", 2, 1, 1)
        s.set_length(7)  # CB(v)+L=8 >= CE(u)+6+1=8
        sim = simulate(g, arch, s, iterations=3)
        # iterations 0 and 1 produce for 1 and 2 (iter 2 produces for 3,
        # beyond the horizon)
        assert len(sim.messages) == 2
        m = sim.messages[0]
        assert m.latency == 6  # 2 hops x volume 3
        assert m.depart == 2 and m.arrive == 7

    def test_cross_iteration_pairing(self, figure1, mesh2x2):
        result = cyclo_compact(figure1, mesh2x2)
        sim = simulate(result.graph, mesh2x2, result.schedule, iterations=6)
        for m in sim.messages:
            assert m.dst_iteration == m.src_iteration + result.graph.delay(
                m.src, m.dst
            )


class TestDynamicChecks:
    def test_valid_schedules_simulate_clean(self, figure7):
        arch = CompletelyConnected(8)
        result = cyclo_compact(figure7, arch)
        simulate(result.graph, arch, result.schedule, iterations=8)

    def test_violated_dependence_detected(self):
        g = CSDFG("g")
        g.add_node("u", 1)
        g.add_node("v", 1)
        g.add_edge("u", "v", 1, 3)
        arch = LinearArray(3)
        s = ScheduleTable(3)
        s.place("u", 0, 1, 1)
        s.place("v", 2, 1, 1)
        s.set_length(5)  # too short: needs 7
        with pytest.raises(SimulationError, match="ready only at"):
            simulate(g, arch, s, iterations=3)

    def test_check_can_be_disabled(self):
        g = CSDFG("g")
        g.add_node("u", 1)
        g.add_node("v", 1)
        g.add_edge("u", "v", 1, 3)
        arch = LinearArray(3)
        s = ScheduleTable(3)
        s.place("u", 0, 1, 1)
        s.place("v", 2, 1, 1)
        s.set_length(5)
        sim = simulate(g, arch, s, iterations=3, check=False)
        assert sim.executions

    def test_pe_timeline_sorted(self, figure1, mesh2x2):
        s = start_up_schedule(figure1, mesh2x2)
        sim = simulate(figure1, mesh2x2, s, iterations=3)
        timeline = sim.pe_timeline(0)
        starts = [e.start for e in timeline]
        assert starts == sorted(starts)
