"""Unit tests for compaction trace bookkeeping."""

from repro.core import CompactionTrace, IterationRecord


def record(index, length, best, accepted=True):
    return IterationRecord(
        index=index,
        rotated=("A",),
        accepted=accepted,
        length_after=length,
        best_so_far=best,
    )


class TestCompactionTrace:
    def test_lengths_prefixed_by_initial(self):
        trace = CompactionTrace(initial_length=10)
        trace.records.append(record(1, 9, 9))
        trace.records.append(record(2, 11, 9))
        assert trace.lengths == [10, 9, 11]

    def test_best_length(self):
        trace = CompactionTrace(initial_length=10)
        trace.records.append(record(1, 12, 10))
        trace.records.append(record(2, 7, 7))
        assert trace.best_length == 7

    def test_passes_to_best(self):
        trace = CompactionTrace(initial_length=10)
        trace.records.append(record(1, 9, 9))
        trace.records.append(record(2, 8, 8))
        trace.records.append(record(3, 8, 8))
        assert trace.passes_to_best == 2

    def test_passes_to_best_when_never_improved(self):
        trace = CompactionTrace(initial_length=5)
        trace.records.append(record(1, 6, 5))
        assert trace.best_length == 5
        assert trace.passes_to_best == 0

    def test_improvement(self):
        trace = CompactionTrace(initial_length=10)
        trace.records.append(record(1, 6, 6))
        assert trace.improvement() == 4

    def test_empty_trace(self):
        trace = CompactionTrace(initial_length=4)
        assert trace.lengths == [4]
        assert trace.best_length == 4
        assert trace.improvement() == 0


class TestPassesToBestConvention:
    """Regression-pin the documented convention: 0 means "never
    strictly improved", including when passes merely tie the initial
    length."""

    def test_zero_when_all_passes_are_worse(self):
        trace = CompactionTrace(initial_length=5)
        trace.records.append(record(1, 6, 5))
        trace.records.append(record(2, 7, 5))
        assert trace.passes_to_best == 0

    def test_zero_when_a_pass_ties_the_initial_length(self):
        # a tie is not an improvement: convergence is credited to the
        # start-up schedule (pass 0), not to the tying pass
        trace = CompactionTrace(initial_length=5)
        trace.records.append(record(1, 5, 5))
        trace.records.append(record(2, 6, 5))
        assert trace.best_length == 5
        assert trace.passes_to_best == 0

    def test_zero_on_empty_trace(self):
        assert CompactionTrace(initial_length=9).passes_to_best == 0

    def test_first_strictly_improving_pass_wins(self):
        trace = CompactionTrace(initial_length=5)
        trace.records.append(record(1, 5, 5))
        trace.records.append(record(2, 4, 4))
        trace.records.append(record(3, 4, 4))
        assert trace.passes_to_best == 2

    def test_rejected_pass_does_not_count_as_improvement(self):
        trace = CompactionTrace(initial_length=5)
        trace.records.append(record(1, 5, 5, accepted=False))
        assert trace.passes_to_best == 0


class TestSerialization:
    def _trace(self):
        trace = CompactionTrace(initial_length=10)
        trace.records.append(record(1, 9, 9))
        trace.records.append(record(2, 11, 9, accepted=False))
        return trace

    def test_to_dict_shape(self):
        data = self._trace().to_dict()
        assert data["initial_length"] == 10
        assert len(data["records"]) == 2
        assert data["records"][0] == {
            "index": 1,
            "rotated": ["A"],
            "accepted": True,
            "length_after": 9,
            "best_so_far": 9,
        }

    def test_dict_round_trip(self):
        trace = self._trace()
        clone = CompactionTrace.from_dict(trace.to_dict())
        assert clone == trace
        assert clone.lengths == trace.lengths
        assert clone.passes_to_best == trace.passes_to_best

    def test_json_round_trip(self):
        trace = self._trace()
        clone = CompactionTrace.from_json(trace.to_json())
        assert clone == trace

    def test_to_dict_is_json_safe(self):
        import json

        json.dumps(self._trace().to_dict())
