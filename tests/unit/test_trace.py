"""Unit tests for compaction trace bookkeeping."""

from repro.core import CompactionTrace, IterationRecord


def record(index, length, best, accepted=True):
    return IterationRecord(
        index=index,
        rotated=("A",),
        accepted=accepted,
        length_after=length,
        best_so_far=best,
    )


class TestCompactionTrace:
    def test_lengths_prefixed_by_initial(self):
        trace = CompactionTrace(initial_length=10)
        trace.records.append(record(1, 9, 9))
        trace.records.append(record(2, 11, 9))
        assert trace.lengths == [10, 9, 11]

    def test_best_length(self):
        trace = CompactionTrace(initial_length=10)
        trace.records.append(record(1, 12, 10))
        trace.records.append(record(2, 7, 7))
        assert trace.best_length == 7

    def test_passes_to_best(self):
        trace = CompactionTrace(initial_length=10)
        trace.records.append(record(1, 9, 9))
        trace.records.append(record(2, 8, 8))
        trace.records.append(record(3, 8, 8))
        assert trace.passes_to_best == 2

    def test_passes_to_best_when_never_improved(self):
        trace = CompactionTrace(initial_length=5)
        trace.records.append(record(1, 6, 5))
        assert trace.best_length == 5
        assert trace.passes_to_best == 0

    def test_improvement(self):
        trace = CompactionTrace(initial_length=10)
        trace.records.append(record(1, 6, 6))
        assert trace.improvement() == 4

    def test_empty_trace(self):
        trace = CompactionTrace(initial_length=4)
        assert trace.lengths == [4]
        assert trace.best_length == 4
        assert trace.improvement() == 0
