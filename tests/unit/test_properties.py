"""Unit tests for graph analytical properties."""

from fractions import Fraction

from repro.graph import (
    CSDFG,
    alap_times,
    asap_times,
    chain_csdfg,
    critical_path_length,
    critical_path_nodes,
    iteration_bound,
    iteration_bound_exact,
    parallelism_profile,
    ring_csdfg,
)


class TestAsapAlap:
    def test_figure1_asap(self, figure1):
        asap = asap_times(figure1)
        # A(1) B(2-3) D(4) E(4-5) F(6); C(2)
        assert asap["A"] == 1
        assert asap["B"] == 2
        assert asap["C"] == 2
        assert asap["D"] == 4
        assert asap["E"] == 4
        assert asap["F"] == 6

    def test_figure1_alap(self, figure1):
        alap = alap_times(figure1)
        assert alap["F"] == 6
        assert alap["E"] == 4
        assert alap["B"] == 2
        assert alap["C"] == 3  # one step of slack
        assert alap["A"] == 1

    def test_alap_never_before_asap(self, figure7):
        asap, alap = asap_times(figure7), alap_times(figure7)
        assert all(alap[v] >= asap[v] for v in figure7.nodes())

    def test_alap_with_custom_horizon(self, figure1):
        alap = alap_times(figure1, horizon=10)
        assert alap["F"] == 10

    def test_critical_path(self, figure1):
        assert critical_path_length(figure1) == 6

    def test_critical_path_nodes(self, figure1):
        crit = critical_path_nodes(figure1)
        assert "C" not in crit
        assert {"A", "B", "E", "F"} <= set(crit)

    def test_empty_graph_cp_zero(self):
        assert critical_path_length(CSDFG()) == 0

    def test_parallelism_profile(self, diamond_dag):
        assert parallelism_profile(diamond_dag) == [1, 2, 1]


class TestIterationBound:
    def test_acyclic_graph_zero(self, diamond_dag):
        assert iteration_bound(diamond_dag) == 0

    def test_figure1(self, figure1):
        # cycles: A->B->D->A (t=4, d=3), A->E..? none; E->F->E (t=3, d=1)
        assert iteration_bound(figure1) == Fraction(3)
        assert iteration_bound_exact(figure1) == Fraction(3)

    def test_chain_loop(self):
        g = chain_csdfg(5, time=2, loop_delay=2)
        assert iteration_bound(g) == Fraction(10, 2)

    def test_ring_fully_pipelined(self):
        g = ring_csdfg(4, delay_per_edge=1, time=1)
        assert iteration_bound(g) == Fraction(1)

    def test_matches_exact_on_figure7(self, figure7):
        assert iteration_bound(figure7) == iteration_bound_exact(figure7)

    def test_fractional_bound(self):
        g = chain_csdfg(3, time=1, loop_delay=2)
        assert iteration_bound(g) == Fraction(3, 2)

    def test_self_loop(self):
        g = CSDFG()
        g.add_node("a", 4)
        g.add_edge("a", "a", 3)
        assert iteration_bound(g) == Fraction(4, 3)
