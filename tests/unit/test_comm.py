"""Unit tests for communication cost models."""

import pytest

from repro.arch import (
    ConstantLatencyModel,
    StoreAndForwardModel,
    WormholeModel,
    ZeroCommModel,
)
from repro.errors import ArchitectureError


class TestStoreAndForward:
    def test_product(self):
        m = StoreAndForwardModel()
        assert m.cost(3, 4) == 12

    def test_same_processor_free(self):
        assert StoreAndForwardModel().cost(0, 100) == 0

    def test_paper_example(self):
        # Figure 1(b): B on PE1 to E on PE3 (2 hops, volume 3) -> 6
        assert StoreAndForwardModel().cost(2, 3) == 6

    def test_rejects_bad_inputs(self):
        m = StoreAndForwardModel()
        with pytest.raises(ArchitectureError):
            m.cost(-1, 1)
        with pytest.raises(ArchitectureError):
            m.cost(1, 0)


class TestWormhole:
    def test_header_plus_flits(self):
        assert WormholeModel().cost(3, 4) == 6

    def test_same_processor_free(self):
        assert WormholeModel().cost(0, 4) == 0

    def test_cheaper_than_store_and_forward_multihop(self):
        snf, wh = StoreAndForwardModel(), WormholeModel()
        assert wh.cost(4, 5) < snf.cost(4, 5)


class TestConstantLatency:
    def test_flat(self):
        m = ConstantLatencyModel(7)
        assert m.cost(1, 10) == 7
        assert m.cost(5, 1) == 7
        assert m.cost(0, 1) == 0

    def test_rejects_negative(self):
        with pytest.raises(ArchitectureError):
            ConstantLatencyModel(-1)


class TestZero:
    def test_always_free(self):
        m = ZeroCommModel()
        assert m.cost(5, 9) == 0
        assert m.cost(0, 1) == 0

    def test_names(self):
        assert StoreAndForwardModel().name == "store-and-forward"
        assert ZeroCommModel().name == "zero"
