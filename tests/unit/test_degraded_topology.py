"""Unit tests for :class:`repro.arch.degraded.DegradedTopology`."""

import pytest

from repro.arch import (
    CompletelyConnected,
    DegradedTopology,
    LinearArray,
    Mesh2D,
    Ring,
    Star,
)
from repro.errors import (
    ArchitectureError,
    DeadProcessorError,
    DisconnectedTopologyError,
)


class TestConstruction:
    def test_preserves_id_space(self):
        deg = DegradedTopology(Mesh2D(2, 4), failed_pes=[3])
        assert deg.num_pes == 8  # ids stay addressable
        assert deg.num_alive == 7
        assert list(deg.processors) == [0, 1, 2, 4, 5, 6, 7]
        assert deg.failed_pes == {3}

    def test_nothing_failed_is_identity_view(self):
        base = Ring(5)
        deg = DegradedTopology(base)
        assert list(deg.processors) == list(base.processors)
        assert deg.links == base.links
        for a in base.processors:
            for b in base.processors:
                assert deg.hops(a, b) == base.hops(a, b)

    def test_link_must_exist(self):
        with pytest.raises(ArchitectureError, match="not a link"):
            DegradedTopology(Ring(4), failed_links=[(0, 2)])

    def test_failed_pe_takes_its_links(self):
        deg = DegradedTopology(Ring(4), failed_pes=[1])
        assert (0, 1) not in deg.links and (1, 2) not in deg.links
        assert (0, 3) in deg.links and (2, 3) in deg.links

    def test_all_pes_failed(self):
        with pytest.raises(DisconnectedTopologyError):
            DegradedTopology(CompletelyConnected(2), failed_pes=[0, 1])


class TestDisconnection:
    def test_cut_linear_array(self):
        with pytest.raises(DisconnectedTopologyError) as exc:
            DegradedTopology(LinearArray(4), failed_links=[(1, 2)])
        assert exc.value.components == [[0, 1], [2, 3]]

    def test_star_hub_failure(self):
        with pytest.raises(DisconnectedTopologyError):
            DegradedTopology(Star(5), failed_pes=[0])

    def test_middle_pe_splits_linear(self):
        with pytest.raises(DisconnectedTopologyError) as exc:
            DegradedTopology(LinearArray(5), failed_pes=[2])
        assert exc.value.components == [[0, 1], [3, 4]]


class TestRerouting:
    def test_ring_link_cut_reroutes_the_long_way(self):
        base = Ring(6)
        deg = DegradedTopology(base, failed_links=[(0, 1)])
        assert base.hops(0, 1) == 1
        assert deg.hops(0, 1) == 5  # all the way around
        assert deg.hops(2, 3) == 1  # untouched pairs keep their routes

    def test_comm_cost_scales_with_new_route(self):
        deg = DegradedTopology(Ring(6), failed_links=[(0, 1)])
        assert deg.comm_cost(0, 1, 2) == 5 * 2  # hops * volume

    def test_dead_pe_unaddressable(self):
        deg = DegradedTopology(Mesh2D(2, 2), failed_pes=[3])
        with pytest.raises(DeadProcessorError, match="pe4"):
            deg.hops(0, 3)
        with pytest.raises(DeadProcessorError):
            deg.execution_time(3, 5)
        assert not deg.is_alive(3)
        assert deg.is_alive(0)

    def test_diameter_over_survivors(self):
        deg = DegradedTopology(LinearArray(5), failed_pes=[4])
        assert deg.diameter == 3  # 0..3 survive
        assert deg.average_distance == pytest.approx(
            (1 + 2 + 3 + 1 + 2 + 1) * 2 / (4 * 3)
        )


class TestComposition:
    def test_degrade_accumulates(self):
        first = DegradedTopology(Mesh2D(2, 4), failed_pes=[0])
        second = first.degrade(failed_pes=[7], failed_links=[(1, 2)])
        assert second.failed_pes == {0, 7}
        assert second.failed_links == {(1, 2)}
        assert second.base is first.base  # composes against the root

    def test_degrade_can_disconnect(self):
        first = DegradedTopology(Ring(4), failed_pes=[0])
        with pytest.raises(DisconnectedTopologyError):
            first.degrade(failed_pes=[2])


class TestSchedulersRunUnmodified:
    def test_startup_avoids_failed_pes(self):
        from repro.core import start_up_schedule
        from repro.schedule import collect_violations
        from repro.workloads import figure1_csdfg

        graph = figure1_csdfg()
        deg = DegradedTopology(Mesh2D(2, 4), failed_pes=[0, 6])
        schedule = start_up_schedule(graph, deg)
        assert collect_violations(graph, deg, schedule) == []
        used = {schedule.placement(v).pe for v in graph.nodes()}
        assert used.isdisjoint({0, 6})

    def test_cyclo_compact_on_degraded(self):
        from repro.core import CycloConfig, cyclo_compact
        from repro.schedule import collect_violations
        from repro.workloads import figure1_csdfg

        graph = figure1_csdfg()
        deg = DegradedTopology(Mesh2D(2, 4), failed_pes=[1])
        result = cyclo_compact(
            graph, deg, config=CycloConfig(max_iterations=10)
        )
        assert collect_violations(result.graph, deg, result.schedule) == []
