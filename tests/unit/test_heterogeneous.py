"""Unit tests for heterogeneous (per-PE speed) scheduling — extension."""

import pytest

from repro.arch import CompletelyConnected, LinearArray
from repro.baselines import etf_schedule, sequential_schedule
from repro.core import CycloConfig, cyclo_compact, start_up_schedule
from repro.errors import ArchitectureError
from repro.graph import CSDFG
from repro.schedule import is_valid_schedule
from repro.sim import simulate


def hetero(num=4, scales=(1, 2, 2, 4)):
    return CompletelyConnected(num).with_time_scales(scales)


class TestArchitectureScales:
    def test_execution_time(self):
        arch = hetero()
        assert arch.execution_time(0, 3) == 3
        assert arch.execution_time(3, 3) == 12
        assert arch.is_heterogeneous
        assert arch.time_scales == (1, 2, 2, 4)

    def test_homogeneous_default(self):
        arch = CompletelyConnected(4)
        assert not arch.is_heterogeneous
        assert arch.execution_time(2, 5) == 5

    def test_guards(self):
        with pytest.raises(ArchitectureError):
            CompletelyConnected(2).with_time_scales([1])
        with pytest.raises(ArchitectureError):
            CompletelyConnected(2).with_time_scales([1, 0])

    def test_with_comm_model_preserves_scales(self):
        from repro.arch import ZeroCommModel

        arch = hetero().with_comm_model(ZeroCommModel())
        assert arch.time_scales == (1, 2, 2, 4)


class TestSchedulingOnHetero:
    def test_startup_valid(self, figure1):
        arch = hetero()
        s = start_up_schedule(figure1, arch)
        assert is_valid_schedule(figure1, arch, s)
        # placed durations reflect the PE speed
        for node in figure1.nodes():
            p = s.placement(node)
            assert p.duration == arch.execution_time(p.pe, figure1.time(node))

    def test_startup_prefers_fast_pes(self):
        g = CSDFG("solo")
        g.add_node("a", 4)
        g.add_edge("a", "a", 1, 1)
        arch = hetero()
        s = start_up_schedule(g, arch)
        assert s.processor("a") == 0  # the unit-scale PE

    def test_cyclo_valid_and_compacts(self, figure7):
        arch = CompletelyConnected(8).with_time_scales(
            [1, 1, 1, 1, 2, 2, 2, 2]
        )
        cfg = CycloConfig(max_iterations=30)
        result = cyclo_compact(figure7, arch, config=cfg)
        assert result.final_length <= result.initial_length
        assert is_valid_schedule(result.graph, arch, result.schedule)

    def test_slower_machine_never_shorter(self, figure7):
        fast = CompletelyConnected(8)
        slow = CompletelyConnected(8).with_time_scales([2] * 8)
        cfg = CycloConfig(max_iterations=25, validate_each_step=False)
        fast_len = cyclo_compact(figure7, fast, config=cfg).final_length
        slow_len = cyclo_compact(figure7, slow, config=cfg).final_length
        assert slow_len >= fast_len

    def test_simulator_accepts(self, figure1):
        arch = hetero()
        s = start_up_schedule(figure1, arch)
        simulate(figure1, arch, s, iterations=4)

    def test_etf_valid(self, figure7):
        arch = LinearArray(4).with_time_scales([1, 1, 2, 2])
        s = etf_schedule(figure7, arch)
        assert is_valid_schedule(figure7, arch, s)

    def test_sequential_uses_pe0_speed(self, figure1):
        arch = CompletelyConnected(2).with_time_scales([3, 1])
        s = sequential_schedule(figure1, arch)
        assert s.makespan == 3 * figure1.total_work()
        assert is_valid_schedule(figure1, arch, s)

    def test_validator_catches_wrong_duration(self, figure1):
        arch = hetero()
        s = start_up_schedule(figure1, CompletelyConnected(4))
        # schedule built for a homogeneous machine: durations on slow
        # PEs are now wrong
        if any(s.processor(n) != 0 for n in figure1.nodes()):
            assert not is_valid_schedule(figure1, arch, s)
