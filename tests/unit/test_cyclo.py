"""Unit tests for the cyclo-compaction driver."""

import pytest

from repro.arch import CompletelyConnected, LinearArray
from repro.core import CycloConfig, cyclo_compact, start_up_schedule
from repro.errors import ScheduleValidationError, SchedulingError
from repro.retiming import apply_retiming
from repro.schedule import ScheduleTable, is_valid_schedule


class TestFigure1:
    def test_compacts_to_paper_or_better(self, figure1, mesh2x2):
        result = cyclo_compact(figure1, mesh2x2)
        assert result.initial_length == 7
        assert result.final_length <= 5  # paper reaches 5

    def test_final_schedule_valid(self, figure1, mesh2x2):
        result = cyclo_compact(figure1, mesh2x2)
        assert is_valid_schedule(result.graph, mesh2x2, result.schedule)

    def test_never_worse_than_initial(self, figure1, mesh2x2):
        result = cyclo_compact(figure1, mesh2x2)
        assert result.final_length <= result.initial_length

    def test_input_graph_not_mutated(self, figure1, mesh2x2):
        snapshot = figure1.copy()
        cyclo_compact(figure1, mesh2x2)
        assert figure1.structurally_equal(snapshot)

    def test_retiming_consistency(self, figure1, mesh2x2):
        result = cyclo_compact(figure1, mesh2x2)
        rebuilt = apply_retiming(figure1, result.retiming)
        assert rebuilt.structurally_equal(result.graph)


class TestPolicies:
    def test_without_relaxation_monotone_trajectory(self, figure1, mesh2x2):
        cfg = CycloConfig(relaxation=False)
        result = cyclo_compact(figure1, mesh2x2, config=cfg)
        lengths = result.trace.lengths
        assert all(b <= a for a, b in zip(lengths, lengths[1:]))

    def test_relaxation_keeps_best_seen(self, figure7):
        arch = CompletelyConnected(4)
        result = cyclo_compact(figure7, arch)
        assert result.final_length == min(result.trace.lengths)

    def test_zero_iterations_returns_startup(self, figure1, mesh2x2):
        cfg = CycloConfig(max_iterations=0)
        result = cyclo_compact(figure1, mesh2x2, config=cfg)
        assert result.final_length == result.initial_length
        assert result.trace.records == []

    def test_patience_stops_early(self, figure7):
        arch = CompletelyConnected(4)
        cfg = CycloConfig(patience=2, max_iterations=100)
        result = cyclo_compact(figure7, arch, config=cfg)
        assert len(result.trace.records) < 100

    def test_config_validation(self):
        with pytest.raises(SchedulingError):
            CycloConfig(max_iterations=-1)
        with pytest.raises(SchedulingError):
            CycloConfig(patience=0)


class TestInitialSchedule:
    def test_custom_initial_used(self, figure1, mesh2x2):
        init = start_up_schedule(figure1, mesh2x2)
        result = cyclo_compact(figure1, mesh2x2, initial=init)
        assert result.initial_schedule.same_placements(init)
        # caller's schedule not mutated
        assert init.length == 7

    def test_illegal_initial_rejected(self, figure1, mesh2x2):
        bogus = ScheduleTable(mesh2x2.num_pes)
        bogus.place("A", 0, 1, 1)  # missing everything else
        with pytest.raises(ScheduleValidationError):
            cyclo_compact(figure1, mesh2x2, initial=bogus)


class TestTrace:
    def test_records_per_pass(self, figure1, mesh2x2):
        cfg = CycloConfig(max_iterations=5)
        result = cyclo_compact(figure1, mesh2x2, config=cfg)
        assert 1 <= len(result.trace.records) <= 5
        first = result.trace.records[0]
        assert first.index == 1
        assert first.rotated == ("A",)

    def test_best_so_far_monotone(self, figure7):
        arch = LinearArray(4)
        result = cyclo_compact(figure7, arch)
        bests = [r.best_so_far for r in result.trace.records]
        assert all(b <= a for a, b in zip(bests, bests[1:]))

    def test_improvement_accessor(self, figure1, mesh2x2):
        result = cyclo_compact(figure1, mesh2x2)
        assert result.trace.improvement() == (
            result.initial_length - result.final_length
        )
