"""Replay every checked-in reproducer in ``tests/corpus/``.

Each corpus file is a shrunk :class:`~repro.qa.case.ReproCase` from a
past (or deliberately injected) scheduler bug.  The contract: on
healthy code every case passes — a failure here means a previously
understood bug is back.  New entries come from
``repro fuzz --out DIR`` (see ``docs/testing.md``).
"""

from pathlib import Path

import pytest

from repro.qa import load_cases, replay_case

CORPUS = Path(__file__).resolve().parent.parent / "corpus"

_CASES = load_cases(CORPUS)


def test_corpus_exists_and_is_loadable():
    assert CORPUS.is_dir()
    assert len(_CASES) >= 1, "tests/corpus/ must ship at least one case"


@pytest.mark.parametrize(
    "path,case", _CASES, ids=[p.stem for p, _ in _CASES]
)
def test_corpus_case_passes(path, case):
    violations = replay_case(case)
    assert violations == [], (
        f"{path.name} regressed ({case.describe()}):\n  "
        + "\n  ".join(violations)
    )


def test_corpus_cases_are_small():
    # the corpus only accepts *shrunk* reproducers: small enough that a
    # human can read the graph in the JSON directly
    for path, case in _CASES:
        assert case.graph.num_nodes <= 8, (
            f"{path.name} has {case.graph.num_nodes} nodes; shrink it "
            f"before checking it in"
        )
