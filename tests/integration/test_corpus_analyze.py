"""The checked-in reproducer corpus must pass the static analyzer.

Every ``tests/corpus/*.json`` case is a shrunk fuzz catch that the
pipeline must now handle; the analyzer is the pipeline's front door,
so each case must analyze clean — no errors, and no warnings beyond
the documented ones the shrinker legitimately produces (ddmin removes
edges, so shrunk graphs may carry dead nodes / disconnected pieces).
"""

import json
from pathlib import Path

import pytest

from repro.analyze import analyze_inputs, load_graph_input
from repro.qa import ReproCase

CORPUS = Path(__file__).resolve().parent.parent / "corpus"
CASES = sorted(CORPUS.glob("*.json"))

#: Warnings a shrunk reproducer may legitimately carry.
DOCUMENTED_WARNINGS = {
    "RA103",  # dead node: ddmin removed its incident edges
    "RA104",  # disconnected graph: same cause
    "RA203",  # comm blow-up: tiny shrunk work vs. untouched volumes
    "RA206",  # bridge links: linear arrays/trees are all bridges
    "RA207",  # route hotspot: tiny machines concentrate all routes
}


def test_corpus_exists():
    assert len(CASES) >= 6, "reproducer corpus went missing"


@pytest.mark.parametrize("path", CASES, ids=lambda p: p.stem)
def test_case_analyzes_clean(path):
    case = ReproCase.from_json(path.read_text())
    report = analyze_inputs(
        case.graph,
        case.arch_spec.build(),
        config=case.config,
        subject=path.stem,
    )
    assert report.errors == [], report.describe()
    unexpected = [
        d for d in report.warnings if d.code not in DOCUMENTED_WARNINGS
    ]
    assert unexpected == [], [d.render() for d in unexpected]


@pytest.mark.parametrize("path", CASES, ids=lambda p: p.stem)
def test_case_graph_loads_through_the_analyzer_front_door(path):
    # load_graph_input understands repro-qa-case files directly (it
    # analyzes the embedded graph payload)
    graph, diags = load_graph_input(str(path))
    assert graph is not None, [d.render() for d in diags]
    embedded = json.loads(path.read_text())["graph"]
    assert graph.num_nodes == len(embedded["nodes"])
