"""Stress-scale runs: the full pipeline on graphs an order of magnitude
beyond the paper's examples."""

import math

import pytest

from repro.arch import Hypercube, Mesh2D
from repro.core import CycloConfig, cyclo_compact
from repro.graph import iteration_bound, random_csdfg
from repro.schedule import collect_violations
from repro.sim import simulate
from repro.workloads import SuiteSpec, random_suite

CFG = CycloConfig(max_iterations=40, validate_each_step=False)


class TestLargeRandomGraphs:
    @pytest.mark.parametrize("num_nodes,seed", [(60, 17), (100, 23)])
    def test_pipeline_on_large_graph(self, num_nodes, seed):
        graph = random_csdfg(
            num_nodes, seed=seed, edge_prob=0.08, back_edge_prob=0.06
        )
        arch = Hypercube(3)
        result = cyclo_compact(graph, arch, config=CFG)
        assert result.final_length <= result.initial_length
        assert result.final_length >= math.ceil(iteration_bound(graph))
        assert collect_violations(result.graph, arch, result.schedule) == []
        simulate(result.graph, arch, result.schedule, iterations=3)

    def test_population_consistency(self):
        graphs = random_suite(SuiteSpec(count=5, num_nodes=30, seed=99))
        arch = Mesh2D(2, 4)
        for graph in graphs:
            result = cyclo_compact(graph, arch, config=CFG)
            assert (
                collect_violations(result.graph, arch, result.schedule) == []
            ), graph.name
            # compaction should genuinely engage on cyclic graphs
            assert result.final_length <= result.initial_length
