"""The two-phase contention pipeline, end to end.

Pins the PR's acceptance criterion: on a shared-bottleneck workload
the contention-aware remapper produces a schedule with a **strictly
lower** contended communication bill than the contention-blind
schedule — and with contention disabled, everything prices
bit-identically to the paper's contention-free model.
"""

from repro.arch import (
    CommCostCache,
    Ring,
    SerializedContention,
    contended_cost,
    make_architecture,
)
from repro.core import (
    CycloConfig,
    contention_aware_schedule,
    cyclo_compact,
)
from repro.errors import SchedulingError
from repro.graph import layered_csdfg
from repro.schedule import collect_violations

import pytest


def bottleneck_case():
    """Wide layered graph on a ring: the blind remapper piles traffic
    onto a few links, which contended pricing then punishes."""
    graph = layered_csdfg([3, 3, 3, 3], seed=7)
    arch = Ring(6)
    cfg = CycloConfig(validate_each_step=False)
    return graph, arch, cfg


class TestAcceptanceCriterion:
    def test_aware_schedule_beats_blind_on_contended_bill(self):
        graph, arch, cfg = bottleneck_case()
        model = SerializedContention(weight=3)
        result = contention_aware_schedule(
            graph, arch, config=cfg, model=model
        )
        assert result.final_cost < result.blind_cost
        # the winner really is an aware round, priced by its own cache
        assert result.comm is not None
        assert result.comm.contended

    def test_winner_is_validator_legal_under_its_pricing(self):
        graph, arch, cfg = bottleneck_case()
        model = SerializedContention(weight=3)
        result = contention_aware_schedule(
            graph, arch, config=cfg, model=model
        )
        violations = collect_violations(
            result.graph, arch, result.schedule, comm=result.comm
        )
        assert violations == []

    def test_blind_baseline_always_competes(self):
        # even when aware rounds cannot improve, the result never
        # bills above the baseline
        graph = layered_csdfg([2, 2], seed=3)
        arch = make_architecture("complete", 4)
        result = contention_aware_schedule(
            graph, arch, config=CycloConfig(validate_each_step=False),
            model=SerializedContention(weight=1),
        )
        assert result.final_cost <= result.blind_cost
        assert result.round_costs[0] == result.blind_cost

    def test_reported_costs_match_independent_repricing(self):
        graph, arch, cfg = bottleneck_case()
        model = SerializedContention(weight=3)
        result = contention_aware_schedule(
            graph, arch, config=cfg, model=model
        )
        again = contended_cost(
            result.graph, arch, result.schedule.processor_map(), model
        )
        assert again.contended_cost == result.final_cost


class TestContentionDisabledBitIdentical:
    def test_default_pipeline_unchanged(self):
        graph, arch, cfg = bottleneck_case()
        plain = cyclo_compact(graph, arch, config=cfg)
        # an explicitly passed contention-free cache prices exactly
        # like the default fast path: identical schedules
        witness = cyclo_compact(
            graph, arch, config=cfg,
            comm=CommCostCache.for_graph(arch, graph),
        )
        assert witness.final_length == plain.final_length
        assert witness.schedule.length == plain.schedule.length
        want = {
            n: (p.pe, p.start, p.duration)
            for n, p in (
                (node, plain.schedule.placement(node))
                for node in plain.schedule.nodes()
            )
        }
        got = {
            n: (p.pe, p.start, p.duration)
            for n, p in (
                (node, witness.schedule.placement(node))
                for node in witness.schedule.nodes()
            )
        }
        assert got == want

    def test_config_defaults_resolve_to_no_model(self):
        cfg = CycloConfig()
        assert cfg.contention_model is None
        assert cfg.resolve_contention() is None

    def test_pipeline_requires_a_model(self):
        graph, arch, cfg = bottleneck_case()
        with pytest.raises(SchedulingError):
            contention_aware_schedule(graph, arch, config=cfg)

    def test_config_carries_the_model(self):
        graph, arch, _ = bottleneck_case()
        cfg = CycloConfig(
            validate_each_step=False,
            contention_model="serialized",
            contention_weight=3,
            contention_rounds=2,
        )
        result = contention_aware_schedule(graph, arch, config=cfg)
        assert result.model.name == "serialized"
        assert result.final_cost <= result.blind_cost
