"""Integration: the paper's Tables 1-10 (19-node graph, five 8-PE
architectures).

The 19-node graph is a reconstruction (DESIGN.md §5), so the checks are
shape checks: start-up lengths in the published 12-15 band, compaction
to the published 5-8 band, completely connected at least as good as
every point-to-point topology, and the linear array no better than the
richer topologies.
"""

import math

import pytest

from repro.analysis import run_grid
from repro.arch import paper_architectures
from repro.core import CycloConfig
from repro.graph import iteration_bound
from repro.workloads import figure7_csdfg

CFG = CycloConfig(max_iterations=100, validate_each_step=False)


@pytest.fixture(scope="module")
def cells():
    return run_grid(figure7_csdfg(), paper_architectures(8), config=CFG)


class TestStartupBand:
    def test_init_lengths(self, cells):
        for key, cell in cells.items():
            assert 11 <= cell.init <= 17, (key, cell.init)

    def test_complete_init_not_worst(self, cells):
        assert cells["com"].init <= max(c.init for c in cells.values())


class TestCompactionBand:
    def test_after_band(self, cells):
        for key, cell in cells.items():
            assert 5 <= cell.after <= 9, (key, cell.after)

    def test_substantial_compaction(self, cells):
        # paper: every architecture compacts by roughly a factor 2
        for key, cell in cells.items():
            assert cell.after <= cell.init * 0.65, (key, cell.after, cell.init)

    def test_bound_respected(self, cells):
        g = figure7_csdfg()
        floor = math.ceil(iteration_bound(g))
        assert all(c.after >= floor for c in cells.values())


class TestArchitectureOrdering:
    def test_complete_is_best(self, cells):
        best = min(c.after for c in cells.values())
        assert cells["com"].after == best

    def test_linear_is_not_best(self, cells):
        # the linear array's diameter-7 store-and-forward is the worst
        # environment; it must not beat every richer topology
        others = [cells[k].after for k in ("com", "2-d", "hyp")]
        assert cells["lin"].after >= min(others)

    def test_hypercube_competitive_with_mesh(self, cells):
        assert abs(cells["hyp"].after - cells["2-d"].after) <= 2
