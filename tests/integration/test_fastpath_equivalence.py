"""End-to-end fast-path vs reference-engine equivalence.

``cyclo_compact`` (comm-cost cache, interval-indexed table, incremental
PSL, pruned slot search) must produce exactly the schedules of
``reference_cyclo_compact`` (the preserved pre-optimisation engine):
same lengths, same placements, same accept/reject traces — on every
registered workload and every paper topology, and across the optimiser
modes (per-step validation, first-fit remapping, pipelined PEs, no
relaxation).
"""

import pytest

from repro.arch.registry import make_architecture, paper_architectures
from repro.core import CycloConfig, cyclo_compact
from repro.perf.reference import reference_cyclo_compact
from repro.workloads import make_workload, workload_names


def _assert_equivalent(graph, arch, cfg):
    fast = cyclo_compact(graph, arch, config=cfg)
    ref = reference_cyclo_compact(graph, arch, config=cfg)
    label = f"{graph.name} on {arch.name}"
    assert fast.initial_length == ref.initial_length, label
    assert fast.final_length == ref.final_length, label
    assert fast.initial_schedule.same_placements(
        ref.initial_schedule
    ), label
    assert fast.schedule.same_placements(ref.schedule), label
    assert fast.trace == ref.trace, label
    assert fast.stop_reason == ref.stop_reason, label
    assert fast.retiming == ref.retiming, label


@pytest.mark.parametrize("workload", workload_names())
def test_every_workload_on_every_paper_topology(workload):
    graph = make_workload(workload)
    cfg = CycloConfig(max_iterations=6, validate_each_step=False)
    for arch in paper_architectures(8).values():
        _assert_equivalent(graph, arch, cfg)


def test_tree_topology():
    graph = make_workload("figure7")
    arch = make_architecture("tree", 7)
    cfg = CycloConfig(max_iterations=8, validate_each_step=False)
    _assert_equivalent(graph, arch, cfg)


@pytest.mark.parametrize(
    "kind,pes",
    [
        ("circulant", 8),
        ("cayley-star", 6),
        ("cayley-bubble", 6),
        ("pancake", 6),
    ],
)
def test_cayley_family_topologies(kind, pes):
    # the Cayley generator's members go through the same strict
    # fast-vs-reference equivalence as the paper topologies
    graph = make_workload("figure7")
    arch = make_architecture(kind, pes)
    cfg = CycloConfig(max_iterations=8, validate_each_step=False)
    _assert_equivalent(graph, arch, cfg)


def test_cayley_workload_sweep_on_circulant():
    arch = make_architecture("circulant", 8)
    cfg = CycloConfig(max_iterations=6, validate_each_step=False)
    for workload in ("figure1", "biquad4", "fft8"):
        _assert_equivalent(make_workload(workload), arch, cfg)


def test_with_per_step_validation():
    graph = make_workload("figure7")
    arch = make_architecture("mesh", 8)
    cfg = CycloConfig(max_iterations=8, validate_each_step=True)
    _assert_equivalent(graph, arch, cfg)


def test_first_fit_strategy():
    graph = make_workload("biquad4")
    arch = make_architecture("mesh", 8)
    cfg = CycloConfig(
        max_iterations=8,
        validate_each_step=False,
        remap_strategy="first-fit",
    )
    _assert_equivalent(graph, arch, cfg)


def test_pipelined_pes():
    graph = make_workload("figure7")
    arch = make_architecture("hypercube", 8)
    cfg = CycloConfig(
        max_iterations=8, validate_each_step=False, pipelined_pes=True
    )
    _assert_equivalent(graph, arch, cfg)


def test_without_relaxation():
    graph = make_workload("elliptic5")
    arch = make_architecture("mesh", 8)
    cfg = CycloConfig(
        max_iterations=8, validate_each_step=False, relaxation=False
    )
    _assert_equivalent(graph, arch, cfg)


def test_longer_run_stays_equivalent():
    graph = make_workload("figure7")
    arch = make_architecture("mesh", 8)
    cfg = CycloConfig(max_iterations=40, validate_each_step=False)
    _assert_equivalent(graph, arch, cfg)
