"""Integration: the full toolchain on one workload.

graph -> optimize (compaction + refinement) -> codegen -> simulation ->
buffer sizing -> serialization round trip, with pipelined and
heterogeneous variants.
"""

import pytest

from repro import (
    CycloConfig,
    buffer_requirements,
    generate_program,
    optimize,
    simulate,
)
from repro.arch import Mesh2D
from repro.retiming import apply_retiming, build_loop_code
from repro.schedule import (
    is_valid_schedule,
    load_schedule,
    save_schedule,
)
from repro.workloads import differential_equation_solver, figure7_csdfg

CFG = CycloConfig(max_iterations=30, validate_each_step=False)


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def toolchain(self):
        graph = figure7_csdfg()
        arch = Mesh2D(2, 4)
        result = optimize(graph, arch, config=CFG)
        return graph, arch, result

    def test_optimized_schedule_legal(self, toolchain):
        graph, arch, result = toolchain
        assert is_valid_schedule(result.graph, arch, result.schedule)
        assert apply_retiming(graph, result.retiming).structurally_equal(
            result.graph
        )

    def test_codegen_consistent_with_simulation(self, toolchain):
        _, arch, result = toolchain
        program = generate_program(result.graph, arch, result.schedule)
        sim = simulate(result.graph, arch, result.schedule, iterations=6)
        # messages per iteration in the program == steady-state rate of
        # the simulation (the sim only counts transfers whose consumer
        # falls inside the horizon, so compare against the first
        # iteration's sends that stay in range)
        per_iter = {}
        for m in sim.messages:
            per_iter.setdefault(m.src_iteration, 0)
            per_iter[m.src_iteration] += 1
        assert max(per_iter.values(), default=0) <= program.total_sends
        assert program.total_computes == result.graph.num_nodes

    def test_prologue_epilogue_cover_everything(self, toolchain):
        graph, _, result = toolchain
        code = build_loop_code(graph, result.retiming, iterations=20)
        assert code.total_instances(graph) == 20 * graph.num_nodes

    def test_buffers_and_serialization(self, toolchain, tmp_path):
        _, arch, result = toolchain
        buffers = buffer_requirements(
            result.graph, arch, result.schedule, iterations=6
        )
        assert buffers.total_tokens > 0
        path = tmp_path / "final.json"
        save_schedule(result.schedule, path)
        reloaded = load_schedule(path)
        assert reloaded.same_placements(result.schedule)
        assert is_valid_schedule(result.graph, arch, reloaded)


class TestPipelinedToolchain:
    def test_end_to_end_pipelined(self):
        graph = differential_equation_solver()
        arch = Mesh2D(2, 2)
        cfg = CycloConfig(
            pipelined_pes=True, max_iterations=20, validate_each_step=False
        )
        result = optimize(graph, arch, config=cfg)
        assert is_valid_schedule(
            result.graph, arch, result.schedule, pipelined_pes=True
        )
        program = generate_program(
            result.graph, arch, result.schedule, pipelined_pes=True
        )
        assert program.total_computes == graph.num_nodes
        simulate(
            result.graph, arch, result.schedule, iterations=5, pipelined_pes=True
        )


class TestHeterogeneousToolchain:
    def test_end_to_end_hetero(self):
        graph = differential_equation_solver()
        arch = Mesh2D(2, 2).with_time_scales([1, 1, 2, 2])
        result = optimize(graph, arch, config=CFG)
        assert is_valid_schedule(result.graph, arch, result.schedule)
        program = generate_program(result.graph, arch, result.schedule)
        # every compute op's duration reflects its PE's speed
        for pe_prog in program.pes:
            for op in pe_prog.computes:
                assert op.duration == arch.execution_time(
                    pe_prog.pe, result.graph.time(op.node)
                )
        simulate(result.graph, arch, result.schedule, iterations=5)
