"""End-to-end fuzz campaigns: the qa subsystem's own tier-1 smoke.

A short campaign on healthy code must come back clean, replay
trial-for-trial across process pools, and honour its time budget; the
CLI wrapper must exit 0/1 accordingly and write reproducers on failure.
"""

import json

from repro.cli import main
from repro.qa import FuzzReport, run_fuzz, trial_seed


class TestCampaign:
    def test_healthy_campaign_is_clean(self):
        report = run_fuzz(trials=60, seed=0)
        assert isinstance(report, FuzzReport)
        assert len(report.trials) == 60
        assert report.ok, report.describe()
        # coverage: several architectures and graph sizes were hit
        assert len({t.arch for t in report.trials}) >= 5
        assert len({t.num_nodes for t in report.trials}) >= 3

    def test_campaign_is_deterministic(self):
        a = run_fuzz(trials=20, seed=5)
        b = run_fuzz(trials=20, seed=5)
        assert [
            (t.index, t.seed, t.graph_name, t.arch, t.outcome)
            for t in a.trials
        ] == [
            (t.index, t.seed, t.graph_name, t.arch, t.outcome)
            for t in b.trials
        ]

    def test_jobs2_matches_serial_in_order(self):
        serial = run_fuzz(trials=16, seed=3)
        parallel = run_fuzz(trials=16, seed=3, jobs=2)
        assert [
            (t.index, t.seed, t.graph_name, t.arch, t.outcome)
            for t in parallel.trials
        ] == [
            (t.index, t.seed, t.graph_name, t.arch, t.outcome)
            for t in serial.trials
        ]

    def test_time_budget_returns_a_prefix(self):
        full = run_fuzz(trials=30, seed=1)
        cut = run_fuzz(trials=30, seed=1, time_budget_seconds=0.0)
        assert len(cut.trials) < len(full.trials)
        for a, b in zip(cut.trials, full.trials):
            assert (a.index, a.seed, a.outcome) == (b.index, b.seed, b.outcome)

    def test_trial_seeds_spread(self):
        seeds = [trial_seed(0, i) for i in range(100)]
        assert len(set(seeds)) == 100  # no collisions over a campaign


class TestCli:
    def test_fuzz_exits_zero_on_clean_run(self, capsys):
        assert main(["fuzz", "--trials", "30", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "ALL PROPERTIES HOLD" in out

    def test_fuzz_replays_the_corpus(self, capsys):
        from pathlib import Path

        corpus = Path(__file__).resolve().parent.parent / "corpus"
        assert main(["fuzz", "--replay", str(corpus)]) == 0
        out = capsys.readouterr().out
        assert "all reproducers pass" in out

    def test_fuzz_rejects_unknown_property(self, capsys):
        assert main(["fuzz", "--trials", "5", "--properties", "nope"]) == 1
        assert "unknown properties" in capsys.readouterr().err

    def test_fuzz_rejects_bad_counts(self, capsys):
        assert main(["fuzz", "--trials", "0"]) == 1
        assert main(["fuzz", "--trials", "5", "--jobs", "0"]) == 1

    def test_fuzz_replay_missing_path_errors(self, capsys):
        assert main(["fuzz", "--replay", "does/not/exist"]) == 1
        assert "does not exist" in capsys.readouterr().err

    def test_failing_campaign_exits_one_and_writes_reproducers(
        self, tmp_path, monkeypatch, capsys
    ):
        from repro.arch.cache import CommCostCache

        real = CommCostCache.cost

        def buggy(self, src, dst, volume):
            cost = real(self, src, dst, volume)
            if src != dst and max(src, dst) >= 2 and cost > 0:
                return cost - 1
            return cost

        monkeypatch.setattr(CommCostCache, "cost", buggy)
        out_dir = tmp_path / "repro-out"
        code = main([
            "fuzz", "--trials", "40", "--seed", "7",
            "--out", str(out_dir),
        ])
        assert code == 1
        out = capsys.readouterr().out
        assert "FAILING TRIAL" in out
        written = sorted(out_dir.glob("*.json"))
        assert written, "no reproducer files were written"
        shrunk = [p for p in written if p.stem.endswith("-shrunk")]
        assert shrunk, "no shrunk reproducer was written"
        payload = json.loads(shrunk[0].read_text())
        assert payload["format"] == "repro-qa-case"
        # the shrunk reproducer must FAIL while the bug is live...
        monkeypatch.setattr(CommCostCache, "cost", buggy)
        assert main(["fuzz", "--replay", str(shrunk[0])]) == 1
        # ...and pass once it is fixed
        monkeypatch.setattr(CommCostCache, "cost", real)
        assert main(["fuzz", "--replay", str(shrunk[0])]) == 0
