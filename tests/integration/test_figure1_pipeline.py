"""Integration: the paper's Figure 1-4 walk-through end to end.

Reproduces the §1/§3/§4 running example: the 6-node CSDFG of Figure 1(b)
scheduled onto the 2x2 mesh of Figure 1(a).  The start-up schedule must
match the paper's Figure 2(a)/6(b) cell for cell; cyclo-compaction must
reach the paper's 5 control steps or better.
"""

import math

from repro.analysis import run_cell
from repro.baselines import schedule_bounds
from repro.core import CycloConfig, cyclo_compact, start_up_schedule
from repro.graph import iteration_bound
from repro.retiming import apply_retiming
from repro.schedule import render_table, validate_schedule
from repro.workloads import figure1_csdfg, figure1_mesh


class TestStartupMatchesPaper:
    def test_exact_table(self):
        g, m = figure1_csdfg(), figure1_mesh()
        s = start_up_schedule(g, m)
        # paper Figure 2(a): pe1 runs A B B D E E F; C lands at cs3 on
        # a PE one hop from pe1
        assert s.length == 7
        pe1 = [s.cell(0, cs) for cs in range(1, 8)]
        assert pe1 == ["A", "B", "B", "D", "E", "E", "F"]
        assert s.start("C") == 3
        assert m.hops(0, s.processor("C")) == 1
        validate_schedule(g, m, s)


class TestCompactionMatchesPaper:
    def test_reaches_paper_length_or_better(self):
        g, m = figure1_csdfg(), figure1_mesh()
        result = cyclo_compact(g, m)
        assert result.initial_length == 7
        assert result.final_length <= 5  # paper: 5 after 3 passes
        # absolute floor
        assert result.final_length >= math.ceil(iteration_bound(g))

    def test_three_passes_suffice_for_improvement(self):
        g, m = figure1_csdfg(), figure1_mesh()
        cfg = CycloConfig(max_iterations=3)
        result = cyclo_compact(g, m, config=cfg)
        assert result.final_length < result.initial_length

    def test_schedule_is_fully_consistent(self):
        g, m = figure1_csdfg(), figure1_mesh()
        result = cyclo_compact(g, m)
        validate_schedule(result.graph, m, result.schedule)
        rebuilt = apply_retiming(g, result.retiming)
        assert rebuilt.structurally_equal(result.graph)
        # rendering works on the final table (smoke)
        assert "pe1" in render_table(result.schedule)

    def test_both_policies_improve(self):
        g, m = figure1_csdfg(), figure1_mesh()
        for relaxation in (True, False):
            cell, _ = run_cell(g, m, relaxation=relaxation)
            assert cell.after < cell.init


class TestAgainstBounds:
    def test_final_inside_analytic_bracket(self):
        g, m = figure1_csdfg(), figure1_mesh()
        b = schedule_bounds(g, m)
        result = cyclo_compact(g, m)
        assert b.lower <= result.final_length <= b.sequential
