"""Determinism: every scheduler is a pure function of its inputs.

EXPERIMENTS.md promises exactly reproducible schedule lengths; these
tests pin that down — identical runs produce identical placements, and
the randomised workload factories are seed-stable.
"""

from repro.analysis import run_grid
from repro.arch import Mesh2D, paper_architectures
from repro.baselines import etf_schedule
from repro.core import CycloConfig, cyclo_compact, optimize, start_up_schedule
from repro.graph import random_csdfg
from repro.workloads import figure7_csdfg

CFG = CycloConfig(max_iterations=30, validate_each_step=False)


class TestSchedulerDeterminism:
    def test_startup_identical_runs(self, figure7):
        arch = Mesh2D(2, 4)
        a = start_up_schedule(figure7, arch)
        b = start_up_schedule(figure7, arch)
        assert a.same_placements(b)

    def test_cyclo_identical_runs(self, figure7):
        arch = Mesh2D(2, 4)
        a = cyclo_compact(figure7, arch, config=CFG)
        b = cyclo_compact(figure7, arch, config=CFG)
        assert a.schedule.same_placements(b.schedule)
        assert a.trace.lengths == b.trace.lengths
        assert a.retiming == b.retiming

    def test_optimize_identical_runs(self, figure7):
        arch = Mesh2D(2, 4)
        a = optimize(figure7, arch, config=CFG)
        b = optimize(figure7, arch, config=CFG)
        assert a.schedule.same_placements(b.schedule)
        assert a.round_lengths == b.round_lengths

    def test_etf_identical_runs(self, figure7):
        arch = Mesh2D(2, 4)
        assert etf_schedule(figure7, arch).same_placements(
            etf_schedule(figure7, arch)
        )

    def test_grid_identical_runs(self):
        g = figure7_csdfg()
        archs = paper_architectures(8)
        a = run_grid(g, archs, config=CFG)
        b = run_grid(g, archs, config=CFG)
        assert {k: (c.init, c.after) for k, c in a.items()} == {
            k: (c.init, c.after) for k, c in b.items()
        }

    def test_fresh_graph_instances_equivalent(self):
        # building the workload twice must give schedules of identical
        # shape (no hidden global state)
        arch = Mesh2D(2, 4)
        a = cyclo_compact(figure7_csdfg(), arch, config=CFG)
        b = cyclo_compact(figure7_csdfg(), arch, config=CFG)
        assert a.final_length == b.final_length

    def test_generator_seed_stability(self):
        assert random_csdfg(20, seed=5).structurally_equal(
            random_csdfg(20, seed=5)
        )
