"""Integration: the paper's Table 11 (filters with slowdown 3).

Shape checks on the reconstructed filter benchmarks: compaction always
helps, remapping with relaxation never ends worse than without, and the
completely connected architecture ties or wins the "after" column.
"""

import pytest

from repro.analysis import run_grid
from repro.arch import paper_architectures
from repro.core import CycloConfig
from repro.graph import slowdown
from repro.workloads import elliptic_wave_filter, lattice_filter

CFG_RELAX = CycloConfig(relaxation=True, max_iterations=80, validate_each_step=False)
CFG_STRICT = CycloConfig(relaxation=False, max_iterations=80, validate_each_step=False)


@pytest.fixture(scope="module", params=["elliptic", "lattice"])
def filter_cells(request):
    graph = {
        "elliptic": lambda: slowdown(elliptic_wave_filter(), 3),
        "lattice": lambda: slowdown(lattice_filter(8), 3),
    }[request.param]()
    archs = paper_architectures(8)
    with_relax = run_grid(graph, archs, relaxation=True, config=CFG_RELAX)
    without = run_grid(graph, archs, relaxation=False, config=CFG_STRICT)
    return request.param, with_relax, without


class TestTable11Shape:
    def test_compaction_always_helps(self, filter_cells):
        name, with_relax, without = filter_cells
        for key in with_relax:
            assert with_relax[key].after < with_relax[key].init, (name, key)
            assert without[key].after <= without[key].init, (name, key)

    def test_relaxation_never_worse(self, filter_cells):
        name, with_relax, without = filter_cells
        for key in with_relax:
            assert with_relax[key].after <= without[key].after, (name, key)

    def test_complete_ties_or_wins(self, filter_cells):
        name, with_relax, _ = filter_cells
        best = min(c.after for c in with_relax.values())
        assert with_relax["com"].after <= best + 1, name

    def test_bound_respected(self, filter_cells):
        import math

        name, with_relax, without = filter_cells
        for cells in (with_relax, without):
            for key, cell in cells.items():
                assert cell.after >= math.ceil(cell.bound), (name, key)
