"""Integration: serialization round trips compose with scheduling.

A workload written to JSON/edge-list and read back must schedule to the
identical table; architectures round trip with their comm models.
"""

from repro.arch import Mesh2D, load_architecture, save_architecture
from repro.core import cyclo_compact, start_up_schedule
from repro.graph import from_edge_list, from_json, to_edge_list, to_json
from repro.workloads import figure7_csdfg, make_workload, workload_names


class TestGraphRoundTrips:
    def test_schedules_identical_after_json(self):
        g = figure7_csdfg()
        g2 = from_json(to_json(g))
        arch = Mesh2D(2, 4)
        s1 = start_up_schedule(g, arch)
        s2 = start_up_schedule(g2, arch)
        assert s1.same_placements(s2)

    def test_schedules_identical_after_edge_list(self):
        g = figure7_csdfg()
        g2 = from_edge_list(to_edge_list(g))
        arch = Mesh2D(2, 4)
        assert start_up_schedule(g, arch).same_placements(
            start_up_schedule(g2, arch)
        )

    def test_all_workloads_round_trip(self):
        for name in workload_names():
            g = make_workload(name)
            assert from_json(to_json(g)).structurally_equal(g), name


class TestArchitectureRoundTrip:
    def test_schedule_invariant(self, tmp_path):
        g = figure7_csdfg()
        arch = Mesh2D(2, 4)
        path = tmp_path / "mesh.json"
        save_architecture(arch, path)
        loaded = load_architecture(path)
        from repro.core import CycloConfig

        cfg = CycloConfig(max_iterations=10, validate_each_step=False)
        r1 = cyclo_compact(g, arch, config=cfg)
        r2 = cyclo_compact(g, loaded, config=cfg)
        assert r1.final_length == r2.final_length
        assert r1.schedule.same_placements(r2.schedule)
