"""Chaos harness: the resilience subsystem's end-to-end invariant.

Every seeded trial must end in a validated-legal schedule on the
surviving topology or in a typed error — never a silent corrupt
schedule and never a hang.  The acceptance bar is 200+ campaigns
across at least 3 topologies and 3 workloads.
"""

import pytest

from repro.errors import StallDetectedError
from repro.obs import metrics
from repro.resilience import run_chaos_campaign
from repro.resilience.chaos import run_chaos_trial
from repro.resilience.simfault import simulate_with_faults


class TestChaosInvariant:
    def test_200_campaigns_hold_the_invariant(self):
        report = run_chaos_campaign(
            trials=200,
            seed=2026,
            topologies=("linear", "ring", "mesh", "hypercube"),
            workloads=("figure1", "biquad2", "diffeq"),
            transient_fraction=0.25,
        )
        assert len(report.trials) == 200
        assert report.invariant_holds, report.describe()
        counts = report.counts()
        # the campaign must actually exercise both sides of the contract
        assert counts.get("survived", 0) > 0, report.describe()
        assert counts.get("disconnected", 0) > 0, report.describe()
        # every trial covered at least one fault
        assert all(t.num_faults >= 1 for t in report.trials)
        # coverage: all requested topologies and workloads were hit
        assert {t.topology for t in report.trials} == {
            "linear", "ring", "mesh", "hypercube"
        }
        assert {t.workload for t in report.trials} == {
            "figure1", "biquad2", "diffeq"
        }

    def test_trials_are_replayable(self):
        a = run_chaos_trial(99, 5)
        b = run_chaos_trial(99, 5)
        assert a.outcome == b.outcome
        assert a.campaign == b.campaign
        assert a.makespan == b.makespan

    def test_outcomes_reach_metrics(self):
        from repro.obs import InMemorySink, install_sink, remove_sink

        sink = InMemorySink()
        install_sink(sink)  # metrics are no-ops without a sink
        try:
            metrics.reset()
            run_chaos_campaign(trials=6, seed=0)
            counters = metrics.snapshot()["counters"]
        finally:
            remove_sink(sink)
        assert counters.get("resilience.chaos.trials") == 6
        assert sum(
            v
            for k, v in counters.items()
            if k.startswith("resilience.chaos.outcome.")
        ) == 6

    def test_time_budget_stops_early(self):
        report = run_chaos_campaign(
            trials=10_000, seed=1, time_budget_seconds=0.0
        )
        assert len(report.trials) == 0


class TestWatchdog:
    def test_saturating_campaign_cannot_hang(self):
        """A campaign with more strikes than the watchdog allows
        consecutive reconfigurations must end in a typed error, not
        spin."""
        from repro.arch import make_architecture
        from repro.core import start_up_schedule
        from repro.resilience import FaultCampaign, LinkFault
        from repro.workloads import make_workload

        graph = make_workload("figure1")
        arch = make_architecture("complete", 4)
        schedule = start_up_schedule(graph, arch)
        # strike a new transient link fault at every iteration boundary
        # forever (heal+strike each boundary): watchdog_limit=0 turns
        # the very first reconfiguration into a stall
        campaign = FaultCampaign(
            [LinkFault(0, 1, at_step=1, duration=1)]
        )
        with pytest.raises(StallDetectedError):
            simulate_with_faults(
                graph, arch, schedule, 3, campaign, watchdog_limit=0
            )


class TestParallelDeterminism:
    """Regression guard: ``--jobs > 1`` must reproduce the serial
    campaign trial-for-trial, in item order."""

    @staticmethod
    def _key(trial):
        # compare everything deterministic (elapsed_seconds is wall
        # clock and legitimately differs between runs)
        return (
            trial.index,
            trial.seed,
            trial.topology,
            trial.workload,
            trial.num_faults,
            trial.outcome,
            trial.campaign,
            trial.iterations,
            trial.makespan,
            trial.reconfigurations,
            trial.regression,
            trial.error,
        )

    def test_jobs2_matches_serial_in_order(self):
        serial = run_chaos_campaign(trials=12, seed=42)
        parallel = run_chaos_campaign(trials=12, seed=42, jobs=2)
        assert [self._key(t) for t in parallel.trials] == [
            self._key(t) for t in serial.trials
        ]
        assert [t.index for t in parallel.trials] == list(range(12))

    def test_jobs2_merges_worker_metrics(self):
        from repro.obs import InMemorySink, install_sink, remove_sink

        sink = InMemorySink()
        install_sink(sink)
        try:
            metrics.reset()
            run_chaos_campaign(trials=6, seed=0, jobs=2)
            snap = metrics.snapshot()
            counters = snap["counters"]
        finally:
            remove_sink(sink)
        # per-trial counters were recorded inside the workers and must
        # have been merged back into this process's registry
        assert counters.get("resilience.chaos.trials") == 6
        assert sum(
            v
            for k, v in counters.items()
            if k.startswith("resilience.chaos.outcome.")
        ) == 6
