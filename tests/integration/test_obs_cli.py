"""Integration tests: the observability CLI surface end to end."""

import json

from repro.cli import main


class TestScheduleTrace:
    def test_trace_file_is_a_parseable_chrome_trace(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert main(
            ["schedule", "figure1", "--arch", "ring", "--trace", str(out)]
        ) == 0
        assert "trace written to" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        events = payload["traceEvents"]
        assert events
        for e in events:
            assert {"ph", "ts", "pid", "tid"} <= set(e)
        names = [e["name"] for e in events if e["ph"] == "X"]
        # one span per optimiser phase ...
        for phase in ("startup", "rotate", "remap", "validate"):
            assert phase in names, f"missing {phase} span"
        # ... and one span per compaction pass
        passes = [
            e for e in events if e["ph"] == "X" and e["name"] == "pass"
        ]
        assert passes
        assert {p["args"]["index"] for p in passes} == set(
            range(1, len(passes) + 1)
        )

    def test_positional_and_flag_workload_agree(self, capsys):
        assert main(["schedule", "figure1", "--arch", "mesh",
                     "--pes", "4", "--render", "none"]) == 0
        positional = capsys.readouterr().out
        assert main(["schedule", "--workload", "figure1", "--arch", "mesh",
                     "--pes", "4", "--render", "none"]) == 0
        flag = capsys.readouterr().out
        assert positional == flag

    def test_unknown_positional_workload_errors(self, capsys):
        assert main(["schedule", "nonsense"]) == 1
        assert "unknown workload" in capsys.readouterr().err

    def test_missing_workload_errors(self, capsys):
        assert main(["schedule"]) == 1
        assert "no workload given" in capsys.readouterr().err


class TestScheduleProfileFlag:
    def test_profile_prints_breakdown_and_metrics(self, capsys):
        assert main(["schedule", "figure1", "--arch", "mesh", "--pes", "4",
                     "--profile", "--render", "none"]) == 0
        out = capsys.readouterr().out
        assert "phase" in out and "remap" in out
        assert "## metrics" in out
        assert "cyclo.passes" in out

    def test_observability_off_after_run(self):
        from repro.obs import enabled

        assert main(["schedule", "figure1", "--arch", "mesh", "--pes", "4",
                     "--profile", "--render", "none"]) == 0
        assert not enabled()


class TestSimulateObservability:
    def test_load_summary_always_printed(self, capsys):
        assert main(["simulate", "figure1", "--arch", "mesh", "--pes", "4",
                     "--loops", "4"]) == 0
        out = capsys.readouterr().out
        assert "per-PE utilisation:" in out
        assert "per-link traffic:" in out
        assert "pe1:" in out

    def test_trace_includes_simulation_tracks(self, tmp_path, capsys):
        out = tmp_path / "sim.json"
        assert main(["simulate", "figure1", "--arch", "mesh", "--pes", "4",
                     "--trace", str(out)]) == 0
        events = json.loads(out.read_text())["traceEvents"]
        pids = {e["pid"] for e in events}
        assert {1, 2} <= pids  # optimiser spans + simulated schedule
        sim_names = [
            e["args"]["name"] for e in events
            if e["ph"] == "M" and e["pid"] == 2
        ]
        assert "pe1" in sim_names

    def test_profile_metrics_include_simulator_load(self, capsys):
        assert main(["simulate", "figure1", "--arch", "mesh", "--pes", "4",
                     "--profile"]) == 0
        out = capsys.readouterr().out
        assert "sim.pe1.busy_steps" in out
        assert "sim.buffer.total_tokens" in out


class TestProfileCommand:
    def test_breakdown_sums_to_about_100(self, capsys):
        assert main(["profile", "figure1", "--arch", "mesh", "--pes", "4",
                     "--runs", "2", "--iterations", "10"]) == 0
        out = capsys.readouterr().out
        assert "profiled 2 run(s)" in out
        total_line = [
            line for line in out.splitlines() if line.startswith("total")
        ][0]
        percent = float(total_line.rstrip("%").split()[-1])
        assert 99.0 <= percent <= 100.5
        assert "startup" in out and "remap" in out

    def test_rejects_bad_runs(self, capsys):
        assert main(["profile", "figure1", "--runs", "0"]) == 1
        assert "--runs" in capsys.readouterr().err

    def test_profile_with_trace_file(self, tmp_path, capsys):
        out = tmp_path / "prof.json"
        assert main(["profile", "figure1", "--arch", "mesh", "--pes", "4",
                     "--runs", "1", "--iterations", "5",
                     "--trace", str(out)]) == 0
        events = json.loads(out.read_text())["traceEvents"]
        assert any(e.get("name") == "cyclo_compact" for e in events)


class TestReportProfileFlag:
    def test_report_accepts_obs_flags(self, tmp_path, capsys):
        trace = tmp_path / "report.json"
        assert main(["report", "--iterations", "5", "--skip-table11",
                     "--trace", str(trace), "--profile"]) == 0
        out = capsys.readouterr().out
        assert "# Reproduction report" in out
        assert "phase" in out
        assert trace.exists()


class TestHistoryRecording:
    def test_schedule_appends_a_provenance_stamped_record(
        self, tmp_path, capsys
    ):
        from repro.obs.history import HistoryStore

        hist = tmp_path / "history"
        assert main(["schedule", "figure1", "--arch", "ring",
                     "--render", "none", "--history-dir", str(hist)]) == 0
        assert "history record (schedule) appended" in capsys.readouterr().out
        records = HistoryStore(hist).load("schedule")
        assert len(records) == 1
        rec = records[0]
        assert rec.workload == "figure1" and rec.kind == "schedule"
        assert rec.engine_version and rec.config_hash
        assert rec.duration_seconds > 0
        assert "remap" in rec.phases
        assert rec.attrs["final_length"] <= rec.attrs["initial_length"]

    def test_repeat_runs_accumulate_append_only(self, tmp_path):
        from repro.obs.history import HistoryStore

        hist = tmp_path / "history"
        for _ in range(2):
            assert main(["schedule", "figure1", "--arch", "ring",
                         "--render", "none",
                         "--history-dir", str(hist)]) == 0
        records = HistoryStore(hist).load("schedule")
        assert len(records) == 2
        # identical invocation => identical provenance group
        assert records[0].key() == records[1].key()

    def test_fuzz_appends_a_fuzz_record(self, tmp_path, capsys):
        from repro.obs.history import HistoryStore

        hist = tmp_path / "history"
        assert main(["fuzz", "--trials", "3", "--seed", "7",
                     "--max-nodes", "6",
                     "--history-dir", str(hist)]) == 0
        records = HistoryStore(hist).load("fuzz")
        assert len(records) == 1
        assert records[0].attrs["trials_run"] == 3
        assert records[0].attrs["failures"] == 0


class TestObsReportAndTop:
    def _make_trace(self, tmp_path):
        trace = tmp_path / "trace.json"
        assert main(["schedule", "figure1", "--arch", "mesh", "--pes", "4",
                     "--render", "none", "--trace", str(trace)]) == 0
        return trace

    def test_report_over_a_trace_ranks_hotspots(self, tmp_path, capsys):
        trace = self._make_trace(tmp_path)
        capsys.readouterr()
        assert main(["obs", "report", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "## hotspots" in out
        assert "| span |" in out and "remap" in out

    def test_report_over_history_summarises_groups(self, tmp_path, capsys):
        hist = tmp_path / "history"
        assert main(["schedule", "figure1", "--arch", "ring",
                     "--render", "none", "--history-dir", str(hist)]) == 0
        capsys.readouterr()
        assert main(["obs", "report", str(hist)]) == 0
        out = capsys.readouterr().out
        assert "## run history (1 record(s))" in out
        assert "| schedule | figure1 |" in out

    def test_top_writes_collapsed_stacks(self, tmp_path, capsys):
        trace = self._make_trace(tmp_path)
        collapsed = tmp_path / "stacks.collapsed"
        capsys.readouterr()
        assert main(["obs", "top", str(trace),
                     "--collapsed", str(collapsed)]) == 0
        out = capsys.readouterr().out
        assert "self (ms)" in out
        lines = collapsed.read_text(encoding="utf-8").splitlines()
        assert lines
        for line in lines:
            stack, _, value = line.rpartition(" ")
            assert stack and value.isdigit()
        assert any(line.startswith("cyclo_compact;") for line in lines)

    def test_diff_of_a_run_against_itself_is_flat(self, tmp_path, capsys):
        trace = self._make_trace(tmp_path)
        capsys.readouterr()
        assert main(["obs", "diff", str(trace), str(trace)]) == 0
        out = capsys.readouterr().out
        assert "| remap |" in out
        assert "1.000" in out  # every ratio is exactly 1


class TestRegressionGate:
    def test_identical_matrix_runs_report_no_regression(
        self, tmp_path, capsys
    ):
        hist = tmp_path / "history"
        for _ in range(2):
            assert main(["obs", "matrix", "--history-dir", str(hist)]) == 0
        capsys.readouterr()
        assert main(["obs", "regressions", "--history-dir", str(hist),
                     "--kind", "gate"]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_seeded_slowdown_trips_the_gate(
        self, tmp_path, capsys, monkeypatch
    ):
        from repro.obs.gate import GATE_SLEEP_ENV

        hist = tmp_path / "history"
        for _ in range(2):
            assert main(["obs", "matrix", "--history-dir", str(hist)]) == 0
        monkeypatch.setenv(GATE_SLEEP_ENV, "1.0")
        assert main(["obs", "matrix", "--history-dir", str(hist)]) == 0
        monkeypatch.delenv(GATE_SLEEP_ENV)
        capsys.readouterr()
        assert main(["obs", "regressions", "--history-dir", str(hist),
                     "--kind", "gate", "--threshold", "1.5"]) == 1
        out = capsys.readouterr().out
        assert "regression(s)" in out and "gate" in out

    def test_matrix_writes_collapsed_stacks_per_cell(
        self, tmp_path, capsys
    ):
        hist = tmp_path / "history"
        coll = tmp_path / "collapsed"
        assert main(["obs", "matrix", "--history-dir", str(hist),
                     "--collapsed-dir", str(coll)]) == 0
        files = sorted(p.name for p in coll.iterdir())
        assert files == [
            "figure7-hypercube8.collapsed",
            "figure7-mesh8.collapsed",
            "lattice4-ring4.collapsed",
        ]

    def test_empty_history_is_not_a_failure(self, tmp_path, capsys):
        assert main(["obs", "regressions",
                     "--history-dir", str(tmp_path / "nothing")]) == 0
        assert "no history records" in capsys.readouterr().out

    def test_bad_threshold_is_a_usage_error(self, tmp_path, capsys):
        assert main(["obs", "regressions",
                     "--history-dir", str(tmp_path),
                     "--threshold", "0.9"]) == 1
        assert "--threshold" in capsys.readouterr().err
