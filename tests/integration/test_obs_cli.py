"""Integration tests: the observability CLI surface end to end."""

import json

from repro.cli import main


class TestScheduleTrace:
    def test_trace_file_is_a_parseable_chrome_trace(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert main(
            ["schedule", "figure1", "--arch", "ring", "--trace", str(out)]
        ) == 0
        assert "trace written to" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        events = payload["traceEvents"]
        assert events
        for e in events:
            assert {"ph", "ts", "pid", "tid"} <= set(e)
        names = [e["name"] for e in events if e["ph"] == "X"]
        # one span per optimiser phase ...
        for phase in ("startup", "rotate", "remap", "validate"):
            assert phase in names, f"missing {phase} span"
        # ... and one span per compaction pass
        passes = [
            e for e in events if e["ph"] == "X" and e["name"] == "pass"
        ]
        assert passes
        assert {p["args"]["index"] for p in passes} == set(
            range(1, len(passes) + 1)
        )

    def test_positional_and_flag_workload_agree(self, capsys):
        assert main(["schedule", "figure1", "--arch", "mesh",
                     "--pes", "4", "--render", "none"]) == 0
        positional = capsys.readouterr().out
        assert main(["schedule", "--workload", "figure1", "--arch", "mesh",
                     "--pes", "4", "--render", "none"]) == 0
        flag = capsys.readouterr().out
        assert positional == flag

    def test_unknown_positional_workload_errors(self, capsys):
        assert main(["schedule", "nonsense"]) == 1
        assert "unknown workload" in capsys.readouterr().err

    def test_missing_workload_errors(self, capsys):
        assert main(["schedule"]) == 1
        assert "no workload given" in capsys.readouterr().err


class TestScheduleProfileFlag:
    def test_profile_prints_breakdown_and_metrics(self, capsys):
        assert main(["schedule", "figure1", "--arch", "mesh", "--pes", "4",
                     "--profile", "--render", "none"]) == 0
        out = capsys.readouterr().out
        assert "phase" in out and "remap" in out
        assert "## metrics" in out
        assert "cyclo.passes" in out

    def test_observability_off_after_run(self):
        from repro.obs import enabled

        assert main(["schedule", "figure1", "--arch", "mesh", "--pes", "4",
                     "--profile", "--render", "none"]) == 0
        assert not enabled()


class TestSimulateObservability:
    def test_load_summary_always_printed(self, capsys):
        assert main(["simulate", "figure1", "--arch", "mesh", "--pes", "4",
                     "--loops", "4"]) == 0
        out = capsys.readouterr().out
        assert "per-PE utilisation:" in out
        assert "per-link traffic:" in out
        assert "pe1:" in out

    def test_trace_includes_simulation_tracks(self, tmp_path, capsys):
        out = tmp_path / "sim.json"
        assert main(["simulate", "figure1", "--arch", "mesh", "--pes", "4",
                     "--trace", str(out)]) == 0
        events = json.loads(out.read_text())["traceEvents"]
        pids = {e["pid"] for e in events}
        assert {1, 2} <= pids  # optimiser spans + simulated schedule
        sim_names = [
            e["args"]["name"] for e in events
            if e["ph"] == "M" and e["pid"] == 2
        ]
        assert "pe1" in sim_names

    def test_profile_metrics_include_simulator_load(self, capsys):
        assert main(["simulate", "figure1", "--arch", "mesh", "--pes", "4",
                     "--profile"]) == 0
        out = capsys.readouterr().out
        assert "sim.pe1.busy_steps" in out
        assert "sim.buffer.total_tokens" in out


class TestProfileCommand:
    def test_breakdown_sums_to_about_100(self, capsys):
        assert main(["profile", "figure1", "--arch", "mesh", "--pes", "4",
                     "--runs", "2", "--iterations", "10"]) == 0
        out = capsys.readouterr().out
        assert "profiled 2 run(s)" in out
        total_line = [
            line for line in out.splitlines() if line.startswith("total")
        ][0]
        percent = float(total_line.rstrip("%").split()[-1])
        assert 99.0 <= percent <= 100.5
        assert "startup" in out and "remap" in out

    def test_rejects_bad_runs(self, capsys):
        assert main(["profile", "figure1", "--runs", "0"]) == 1
        assert "--runs" in capsys.readouterr().err

    def test_profile_with_trace_file(self, tmp_path, capsys):
        out = tmp_path / "prof.json"
        assert main(["profile", "figure1", "--arch", "mesh", "--pes", "4",
                     "--runs", "1", "--iterations", "5",
                     "--trace", str(out)]) == 0
        events = json.loads(out.read_text())["traceEvents"]
        assert any(e.get("name") == "cyclo_compact" for e in events)


class TestReportProfileFlag:
    def test_report_accepts_obs_flags(self, tmp_path, capsys):
        trace = tmp_path / "report.json"
        assert main(["report", "--iterations", "5", "--skip-table11",
                     "--trace", str(trace), "--profile"]) == 0
        out = capsys.readouterr().out
        assert "# Reproduction report" in out
        assert "phase" in out
        assert trace.exists()
