"""Integration: the §1 motivation — communication awareness matters.

Runs the full scheduler against its communication-oblivious ancestors
on communication-hostile architectures and checks the claimed
advantages actually materialise under the true cost model.
"""

import pytest

from repro.analysis import comm_awareness_ablation
from repro.arch import LinearArray, Mesh2D
from repro.core import CycloConfig
from repro.graph import scale_volumes
from repro.workloads import figure7_csdfg, lattice_filter

CFG = CycloConfig(max_iterations=40, validate_each_step=False)


class TestCommAwareness:
    @pytest.mark.parametrize("arch_factory", [lambda: LinearArray(8), lambda: Mesh2D(2, 4)])
    def test_cyclo_never_loses_under_true_model(self, arch_factory):
        graph = scale_volumes(figure7_csdfg(), 2)  # comm-heavy variant
        arch = arch_factory()
        rows = comm_awareness_ablation(graph, arch, config=CFG)
        cyclo = next(r for r in rows if r.scheduler == "cyclo-compaction")
        for row in rows:
            if row.scheduler == "cyclo-compaction":
                continue
            # the oblivious schedule is either infeasible under the true
            # model or no shorter than cyclo-compaction
            assert row.actual is None or cyclo.actual <= row.actual, row

    def test_oblivious_claims_are_optimistic(self):
        graph = scale_volumes(lattice_filter(6), 2)
        arch = LinearArray(8)
        rows = comm_awareness_ablation(graph, arch, config=CFG)
        for row in rows:
            if row.actual is not None:
                assert row.actual >= row.claimed, row
