"""Failure injection: every class of schedule corruption must be caught.

Starts from a known-legal schedule and injects one fault at a time —
moved tasks, swapped processors, truncated lengths, forged durations,
double bookings — checking that the static validator reports it and
(where the corruption survives table construction) the dynamic
simulator rejects it too.
"""

import pytest

from repro.arch import (
    ARCHITECTURE_KINDS,
    DegradedTopology,
    LinearArray,
    Mesh2D,
    make_architecture,
)
from repro.core import cyclo_compact, start_up_schedule
from repro.errors import DisconnectedTopologyError
from repro.schedule import ScheduleTable, collect_violations
from repro.sim import SimulationError, simulate
from repro.workloads import figure1_csdfg, figure7_csdfg

# every registered topology kind at a PE count its factory accepts
# (tree wants 2**k - 1, torus wants a >=3 x >=3 factorisation, the
# permutation-group Cayley kinds want a factorial)
_PE_COUNTS = {
    "tree": 7,
    "torus": 9,
    "cayley-star": 6,
    "cayley-bubble": 6,
    "pancake": 6,
}
ALL_KINDS = sorted(
    (kind, _PE_COUNTS.get(kind, 8)) for kind in ARCHITECTURE_KINDS
)


@pytest.fixture
def legal():
    graph = figure7_csdfg()
    arch = Mesh2D(2, 4)
    schedule = start_up_schedule(graph, arch)
    return graph, arch, schedule


def rebuild_without(schedule, node):
    """Copy the schedule minus one node (for re-insertion attacks)."""
    clone = schedule.copy()
    clone.remove(node)
    return clone


class TestStaticDetection:
    def test_task_moved_too_early(self, legal):
        graph, arch, schedule = legal
        # move a non-root task to control step 1 on a free PE
        victim = next(
            v
            for v in graph.nodes()
            if any(e.delay == 0 for e in graph.in_edges(v))
        )
        corrupt = rebuild_without(schedule, victim)
        pe = next(
            p for p in arch.processors if corrupt.is_free(p, 1, graph.time(victim))
        )
        corrupt.place(victim, pe, 1, graph.time(victim))
        issues = collect_violations(graph, arch, corrupt)
        assert any("dependence" in i for i in issues)

    def test_task_on_distant_pe_without_slack(self, legal):
        graph, arch, schedule = legal
        # re-place a task at the same control step but the farthest PE:
        # at least one communication constraint must break
        victim = max(
            (v for v in graph.nodes() if graph.in_degree(v) > 0),
            key=lambda v: schedule.start(v),
        )
        p = schedule.placement(victim)
        far = max(
            arch.processors,
            key=lambda q: arch.hops(p.pe, q),
        )
        corrupt = rebuild_without(schedule, victim)
        if not corrupt.is_free(far, p.start, p.duration):
            pytest.skip("far PE occupied at that slot")
        corrupt.place(victim, far, p.start, p.duration)
        issues = collect_violations(graph, arch, corrupt)
        assert issues  # some dependence must now be violated

    def test_truncated_length(self):
        # a padded schedule by construction: a cross-PE loop-carried
        # edge with a heavy message forces trailing empty control steps
        from repro.graph import CSDFG

        g = CSDFG("padded")
        g.add_node("u", 1)
        g.add_node("v", 1)
        g.add_edge("u", "v", 0, 1)
        g.add_edge("v", "u", 1, 6)
        arch = LinearArray(2)
        schedule = ScheduleTable(2)
        schedule.place("u", 0, 1, 1)
        schedule.place("v", 1, 3, 1)
        schedule.set_length(8)  # CB(u)+L=9 >= CE(v)+6+1=10? no: 3+6+1=10 -> L >= 9
        schedule.set_length(9)
        assert collect_violations(g, arch, schedule) == []
        corrupt = schedule.copy()
        corrupt._length = 8
        assert collect_violations(g, arch, corrupt)

    def test_forged_duration(self, legal):
        graph, arch, schedule = legal
        victim = next(v for v in graph.nodes() if graph.time(v) == 2)
        corrupt = rebuild_without(schedule, victim)
        p = schedule.placement(victim)
        corrupt.place(victim, p.pe, p.start, 1)  # lie about the latency
        issues = collect_violations(graph, arch, corrupt)
        assert any("duration" in i for i in issues)

    def test_missing_task(self, legal):
        graph, arch, schedule = legal
        corrupt = rebuild_without(schedule, next(graph.nodes()))
        issues = collect_violations(graph, arch, corrupt)
        assert any("not scheduled" in i for i in issues)

    def test_double_booking_via_placement_forgery(self, legal):
        graph, arch, schedule = legal
        corrupt = schedule.copy()
        a, b = list(graph.nodes())[:2]
        pa = corrupt.placement(a)
        # forge b's placement record on top of a's cells
        from repro.schedule import Placement

        corrupt._placements[b] = Placement(
            b, pa.pe, pa.start, corrupt.placement(b).duration
        )
        issues = collect_violations(graph, arch, corrupt)
        assert any("resource conflict" in i for i in issues)


class TestDegradedTopologyDetection:
    """The validator must reject schedules that keep using failed
    hardware — on every registered topology kind."""

    @pytest.mark.parametrize("kind,num_pes", ALL_KINDS)
    def test_work_on_failed_pe_rejected(self, kind, num_pes):
        graph = figure1_csdfg()
        arch = make_architecture(kind, num_pes)
        schedule = start_up_schedule(graph, arch)
        used = sorted({schedule.placement(v).pe for v in graph.nodes()})
        for victim in used:
            try:
                degraded = DegradedTopology(arch, failed_pes=[victim])
            except DisconnectedTopologyError:
                continue  # e.g. the star hub: also a (typed) rejection
            issues = collect_violations(graph, degraded, schedule)
            assert any(
                f"placed on failed pe{victim + 1}" in i for i in issues
            ), f"{kind}: stale schedule survived pe{victim + 1} failure"

    @pytest.mark.parametrize("kind,num_pes", ALL_KINDS)
    def test_route_over_removed_link_rejected(self, kind, num_pes):
        from repro.graph import CSDFG

        arch = make_architecture(kind, num_pes)
        for a, b in arch.links:
            # a tight 2-node schedule whose only slack is the 1-hop route
            # over (a, b); removing that link must break the dependence
            # (or disconnect the machine — also a typed rejection)
            g = CSDFG("tight")
            g.add_node("u", 1)
            g.add_node("v", 1)
            g.add_edge("u", "v", 0, 1)
            t = ScheduleTable(num_pes)
            t.place("u", a, 1, 1)
            comm = arch.comm_cost(a, b, 1)
            t.place("v", b, 1 + comm + 1, 1)
            assert collect_violations(g, arch, t) == []
            try:
                degraded = DegradedTopology(arch, failed_links=[(a, b)])
            except DisconnectedTopologyError:
                continue
            issues = collect_violations(g, degraded, t)
            assert any(
                "dependence edge ('u', 'v')" in i for i in issues
            ), f"{kind}: schedule still legal after cutting link {(a, b)}"


class TestDynamicDetection:
    def test_simulator_agrees_on_truncation(self):
        from repro.graph import CSDFG

        g = CSDFG("padded")
        g.add_node("u", 1)
        g.add_node("v", 1)
        g.add_edge("u", "v", 0, 1)
        g.add_edge("v", "u", 1, 6)
        arch = LinearArray(2)
        schedule = ScheduleTable(2)
        schedule.place("u", 0, 1, 1)
        schedule.place("v", 1, 3, 1)
        schedule.set_length(9)
        simulate(g, arch, schedule, iterations=6)  # legal as padded
        corrupt = schedule.copy()
        corrupt._length = 8
        with pytest.raises(SimulationError):
            simulate(g, arch, corrupt, iterations=6)

    def test_simulator_catches_moved_task(self):
        graph = figure1_csdfg()
        arch = LinearArray(4)
        schedule = start_up_schedule(graph, arch)
        corrupt = schedule.copy()
        p = corrupt.remove("F")  # F depends on D and E in-iteration
        pe = next(
            q for q in arch.processors if corrupt.is_free(q, 1, p.duration)
        )
        corrupt.place("F", pe, 1, p.duration)
        with pytest.raises(SimulationError, match="ready only at"):
            simulate(graph, arch, corrupt, iterations=4)

    def test_compacted_schedules_survive_injection_free(self):
        graph = figure7_csdfg()
        arch = Mesh2D(2, 4)
        result = cyclo_compact(graph, arch)
        # sanity: the uncorrupted pipeline never trips either checker
        assert collect_violations(result.graph, arch, result.schedule) == []
        simulate(result.graph, arch, result.schedule, iterations=6)
