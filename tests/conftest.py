"""Shared fixtures: canonical graphs, architectures, schedules."""

from __future__ import annotations

import pytest

from repro.arch import CompletelyConnected, LinearArray, Mesh2D
from repro.graph import CSDFG
from repro.obs import metrics, remove_all_sinks
from repro.workloads import figure1_csdfg, figure1_mesh, figure7_csdfg


@pytest.fixture(autouse=True)
def _obs_isolation():
    """Observability state is process-global: make sure no test leaks
    sinks or metrics into the next one."""
    yield
    remove_all_sinks()
    metrics.reset()


@pytest.fixture
def figure1():
    """The paper's exact 6-node example graph."""
    return figure1_csdfg()


@pytest.fixture
def mesh2x2():
    """The paper's 2x2 mesh (4 PEs)."""
    return figure1_mesh()


@pytest.fixture
def figure7():
    """The reconstructed 19-node example graph."""
    return figure7_csdfg()


@pytest.fixture
def complete4():
    return CompletelyConnected(4)


@pytest.fixture
def linear4():
    return LinearArray(4)


@pytest.fixture
def tiny_loop():
    """Two-node loop: a -> b (d0), b -> a (d1); both unit time."""
    g = CSDFG("tiny")
    g.add_node("a", 1)
    g.add_node("b", 1)
    g.add_edge("a", "b", 0, 1)
    g.add_edge("b", "a", 1, 1)
    return g


@pytest.fixture
def diamond_dag():
    """Classic diamond: s -> (l, r) -> t, all zero delay."""
    g = CSDFG("diamond")
    for n in "slrt":
        g.add_node(n, 1)
    g.add_edge("s", "l", 0, 1)
    g.add_edge("s", "r", 0, 1)
    g.add_edge("l", "t", 0, 1)
    g.add_edge("r", "t", 0, 1)
    return g
