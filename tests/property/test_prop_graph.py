"""Property tests: graph substrate invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    critical_path_length,
    from_edge_list,
    from_json,
    is_legal,
    iteration_bound,
    iteration_bound_exact,
    slowdown,
    to_edge_list,
    to_json,
    unfold,
    validate_csdfg,
)

from .conftest import csdfgs


class TestGeneratorLegality:
    @given(csdfgs())
    @settings(max_examples=60, deadline=None)
    def test_generated_graphs_are_legal(self, g):
        validate_csdfg(g)

    @given(csdfgs())
    @settings(max_examples=40, deadline=None)
    def test_critical_path_at_least_max_time(self, g):
        assert critical_path_length(g) >= max(g.time(v) for v in g.nodes())


class TestSerializationRoundTrip:
    @given(csdfgs())
    @settings(max_examples=40, deadline=None)
    def test_json(self, g):
        assert from_json(to_json(g)).structurally_equal(g)

    @given(csdfgs())
    @settings(max_examples=40, deadline=None)
    def test_edge_list(self, g):
        assert from_edge_list(to_edge_list(g)).structurally_equal(g)


class TestTransforms:
    @given(csdfgs(), st.integers(2, 4))
    @settings(max_examples=40, deadline=None)
    def test_slowdown_scales_bound(self, g, f):
        slow = slowdown(g, f)
        assert is_legal(slow)
        assert iteration_bound(slow) == iteration_bound(g) / f

    @given(csdfgs(max_nodes=7), st.integers(2, 3))
    @settings(max_examples=25, deadline=None)
    def test_unfold_preserves_legality_and_delay_mass(self, g, f):
        u = unfold(g, f)
        assert is_legal(u)
        assert u.num_nodes == f * g.num_nodes
        assert sum(e.delay for e in u.edges()) == sum(
            e.delay for e in g.edges()
        )


class TestIterationBound:
    @given(csdfgs(max_nodes=8))
    @settings(max_examples=25, deadline=None)
    def test_parametric_matches_exhaustive(self, g):
        assert iteration_bound(g) == iteration_bound_exact(g)

    @given(csdfgs())
    @settings(max_examples=30, deadline=None)
    def test_bound_at_most_total_work(self, g):
        assert iteration_bound(g) <= g.total_work()
