"""Property tests: scheduler outputs are always legal and tight."""

from hypothesis import given, settings

from repro.core import start_up_schedule
from repro.schedule import (
    collect_violations,
    is_valid_schedule,
    minimum_feasible_length,
)

from .conftest import architectures, csdfgs


class TestStartupAlwaysLegal:
    @given(csdfgs(), architectures())
    @settings(max_examples=60, deadline=None)
    def test_valid_on_any_pair(self, g, arch):
        s = start_up_schedule(g, arch)
        assert collect_violations(g, arch, s) == []

    @given(csdfgs(), architectures())
    @settings(max_examples=40, deadline=None)
    def test_length_is_minimal_for_placements(self, g, arch):
        s = start_up_schedule(g, arch)
        assert minimum_feasible_length(g, arch, s) == s.length

    @given(csdfgs(), architectures())
    @settings(max_examples=30, deadline=None)
    def test_one_step_shorter_is_illegal_when_padded(self, g, arch):
        s = start_up_schedule(g, arch)
        if s.length > s.makespan:
            shrunk = s.copy()
            shrunk._length = s.length - 1
            assert not is_valid_schedule(g, arch, shrunk)

    @given(csdfgs(), architectures())
    @settings(max_examples=30, deadline=None)
    def test_every_node_placed_once_with_right_duration(self, g, arch):
        s = start_up_schedule(g, arch)
        assert set(s.nodes()) == set(g.nodes())
        for v in g.nodes():
            assert s.placement(v).duration == g.time(v)
