"""Property tests: refinement safety and codegen completeness."""

from hypothesis import given, settings

from repro.codegen import generate_program
from repro.core import CycloConfig, cyclo_compact, optimize, refine_schedule
from repro.retiming import apply_retiming
from repro.schedule import collect_violations

from .conftest import architectures, csdfgs

FAST = CycloConfig(relaxation=True, max_iterations=8, validate_each_step=False)


class TestRefineProperties:
    @given(csdfgs(max_nodes=9), architectures(max_pes=5))
    @settings(max_examples=30, deadline=None)
    def test_refine_preserves_legality_and_never_lengthens(self, g, arch):
        result = cyclo_compact(g, arch, config=FAST)
        refined = refine_schedule(result.graph, arch, result.schedule)
        assert refined.final_length <= result.final_length
        assert collect_violations(result.graph, arch, refined.schedule) == []

    @given(csdfgs(max_nodes=8), architectures(max_pes=5))
    @settings(max_examples=20, deadline=None)
    def test_optimize_consistency(self, g, arch):
        res = optimize(g, arch, config=FAST, max_rounds=2)
        assert collect_violations(res.graph, arch, res.schedule) == []
        assert apply_retiming(g, res.retiming).structurally_equal(res.graph)
        assert res.final_length <= res.initial_length


class TestCodegenProperties:
    @given(csdfgs(max_nodes=9), architectures(max_pes=5))
    @settings(max_examples=30, deadline=None)
    def test_program_covers_graph(self, g, arch):
        result = cyclo_compact(g, arch, config=FAST)
        program = generate_program(result.graph, arch, result.schedule)
        assert program.total_computes == g.num_nodes
        # sends and recvs pair up exactly over remote edges
        sends = [
            (op.src, op.dst) for p in program.pes for op in p.sends
        ]
        recvs = [
            (op.src, op.dst) for p in program.pes for op in p.recvs
        ]
        assert sorted(map(str, sends)) == sorted(map(str, recvs))
        remote = [
            (e.src, e.dst)
            for e in result.graph.edges()
            if result.schedule.processor(e.src)
            != result.schedule.processor(e.dst)
        ]
        assert sorted(map(str, remote)) == sorted(map(str, sends))

    @given(csdfgs(max_nodes=8), architectures(max_pes=4))
    @settings(max_examples=15, deadline=None)
    def test_render_never_crashes(self, g, arch):
        result = cyclo_compact(g, arch, config=FAST)
        program = generate_program(result.graph, arch, result.schedule)
        text = program.render()
        assert "steady-state loop body" in text
