"""Property tests: cyclo-compaction theorem-level guarantees.

* every intermediate and final schedule passes the validator,
* remapping without relaxation is monotone non-increasing
  (Theorem 4.4),
* the final length never exceeds the start-up length and never beats
  the iteration bound,
* the cumulative retiming exactly reproduces the final graph.
"""

import math

from hypothesis import given, settings

from repro.core import CycloConfig, cyclo_compact
from repro.graph import iteration_bound
from repro.retiming import apply_retiming, normalize_retiming
from repro.schedule import collect_violations

from .conftest import architectures, csdfgs

FAST_RELAX = CycloConfig(relaxation=True, max_iterations=12)
FAST_STRICT = CycloConfig(relaxation=False, max_iterations=12)


class TestTheorem44:
    @given(csdfgs(max_nodes=9), architectures(max_pes=6))
    @settings(max_examples=40, deadline=None)
    def test_without_relaxation_monotone(self, g, arch):
        result = cyclo_compact(g, arch, config=FAST_STRICT)
        lengths = result.trace.lengths
        assert all(b <= a for a, b in zip(lengths, lengths[1:]))


class TestLegality:
    @given(csdfgs(max_nodes=9), architectures(max_pes=6))
    @settings(max_examples=40, deadline=None)
    def test_final_schedule_legal(self, g, arch):
        # validate_each_step (on in FAST_* configs) already asserts all
        # intermediate schedules; re-check the returned best explicitly
        result = cyclo_compact(g, arch, config=FAST_RELAX)
        assert collect_violations(result.graph, arch, result.schedule) == []

    @given(csdfgs(max_nodes=9), architectures(max_pes=6))
    @settings(max_examples=30, deadline=None)
    def test_final_never_worse_than_initial(self, g, arch):
        result = cyclo_compact(g, arch, config=FAST_RELAX)
        assert result.final_length <= result.initial_length

    @given(csdfgs(max_nodes=9), architectures(max_pes=6))
    @settings(max_examples=30, deadline=None)
    def test_iteration_bound_respected(self, g, arch):
        result = cyclo_compact(g, arch, config=FAST_RELAX)
        assert result.final_length >= math.ceil(iteration_bound(g))


class TestRetimingBookkeeping:
    @given(csdfgs(max_nodes=9), architectures(max_pes=6))
    @settings(max_examples=30, deadline=None)
    def test_cumulative_retiming_reproduces_graph(self, g, arch):
        result = cyclo_compact(g, arch, config=FAST_RELAX)
        rebuilt = apply_retiming(g, result.retiming)
        assert rebuilt.structurally_equal(result.graph)

    @given(csdfgs(max_nodes=9), architectures(max_pes=6))
    @settings(max_examples=25, deadline=None)
    def test_retiming_nonnegative(self, g, arch):
        # rotation only ever retimes by +1, so the cumulative retiming
        # is already normalised
        result = cyclo_compact(g, arch, config=FAST_RELAX)
        assert all(r >= 0 for r in result.retiming.values())
        assert normalize_retiming(result.retiming) == {
            v: r - min(result.retiming.values())
            for v, r in result.retiming.items()
        }

    @given(csdfgs(max_nodes=9), architectures(max_pes=6))
    @settings(max_examples=25, deadline=None)
    def test_input_graph_untouched(self, g, arch):
        snapshot = g.copy()
        cyclo_compact(g, arch, config=FAST_RELAX)
        assert g.structurally_equal(snapshot)
