"""Property tests: schedule serialization round-trips exactly."""

from hypothesis import given, settings

from repro.core import start_up_schedule
from repro.schedule import (
    is_valid_schedule,
    schedule_from_json,
    schedule_to_json,
)

from .conftest import architectures, csdfgs


class TestScheduleIoRoundTrip:
    @given(csdfgs(max_nodes=9), architectures(max_pes=6))
    @settings(max_examples=40, deadline=None)
    def test_round_trip_preserves_everything(self, g, arch):
        s = start_up_schedule(g, arch)
        # canonical string labels survive the round trip; relabel the
        # graph's nodes accordingly for validation
        back = schedule_from_json(schedule_to_json(s))
        assert back.length == s.length
        assert back.num_pes == s.num_pes
        for node in s.nodes():
            a, b = s.placement(node), back.placement(str(node))
            assert (a.pe, a.start, a.duration, a.occupancy) == (
                b.pe,
                b.start,
                b.duration,
                b.occupancy,
            )
        relabelled = g.relabel({v: str(v) for v in g.nodes()})
        assert is_valid_schedule(relabelled, arch, back)

    @given(csdfgs(max_nodes=8), architectures(max_pes=5))
    @settings(max_examples=25, deadline=None)
    def test_payload_deterministic(self, g, arch):
        s = start_up_schedule(g, arch)
        assert schedule_to_json(s) == schedule_to_json(s.copy())
