"""Property tests: buffer sizing, contention replay and pipelined-PE
invariants on random instances."""

from hypothesis import given, settings

from repro.core import CycloConfig, cyclo_compact, start_up_schedule
from repro.schedule import collect_violations
from repro.sim import buffer_requirements, simulate, simulate_contended

from .conftest import architectures, csdfgs

PIPED = CycloConfig(
    relaxation=True, max_iterations=6, validate_each_step=False,
    pipelined_pes=True,
)


class TestBufferProperties:
    @given(csdfgs(max_nodes=8), architectures(max_pes=5))
    @settings(max_examples=25, deadline=None)
    def test_every_edge_sized_nonnegative(self, g, arch):
        s = start_up_schedule(g, arch)
        report = buffer_requirements(g, arch, s, iterations=5)
        assert set(report.per_edge) == {e.key for e in g.edges()}
        assert all(v >= 0 for v in report.per_edge.values())
        assert report.total_tokens == sum(report.per_edge.values())

    @given(csdfgs(max_nodes=8), architectures(max_pes=5))
    @settings(max_examples=20, deadline=None)
    def test_words_at_least_tokens(self, g, arch):
        s = start_up_schedule(g, arch)
        report = buffer_requirements(g, arch, s, iterations=5)
        assert report.total_words >= report.total_tokens  # volumes >= 1


class TestContentionProperties:
    @given(csdfgs(max_nodes=8), architectures(max_pes=5))
    @settings(max_examples=25, deadline=None)
    def test_actual_never_earlier_than_model(self, g, arch):
        s = start_up_schedule(g, arch)
        report = simulate_contended(g, arch, s, iterations=4)
        for m in report.messages:
            assert m.actual_arrival >= m.model_arrival
            assert m.queueing >= 0
            assert m.lateness >= 0
        assert report.late_messages <= len(report.messages)

    @given(csdfgs(max_nodes=7), architectures(max_pes=4))
    @settings(max_examples=15, deadline=None)
    def test_model_valid_schedules_only_miss_by_queueing(self, g, arch):
        s = start_up_schedule(g, arch)
        report = simulate_contended(g, arch, s, iterations=4)
        for m in report.messages:
            if m.queueing == 0:
                # without queueing the no-congestion model guarantees
                # arrival in time
                assert m.lateness == 0


class TestPipelinedProperties:
    @given(csdfgs(max_nodes=8), architectures(max_pes=5))
    @settings(max_examples=25, deadline=None)
    def test_pipelined_cyclo_legal_and_simulates(self, g, arch):
        result = cyclo_compact(g, arch, config=PIPED)
        assert (
            collect_violations(
                result.graph, arch, result.schedule, pipelined_pes=True
            )
            == []
        )
        simulate(
            result.graph, arch, result.schedule, iterations=4,
            pipelined_pes=True,
        )

    @given(csdfgs(max_nodes=8), architectures(max_pes=5))
    @settings(max_examples=20, deadline=None)
    def test_pipelined_startup_never_longer_makespan(self, g, arch):
        plain = start_up_schedule(g, arch)
        piped = start_up_schedule(g, arch, pipelined_pes=True)
        assert piped.makespan <= plain.makespan
