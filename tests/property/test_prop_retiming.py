"""Property tests: retiming invariants (Lemma-level guarantees)."""

import networkx as nx
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.graph import critical_path_length, is_legal, iteration_bound
from repro.retiming import (
    apply_retiming,
    can_rotate,
    is_legal_retiming,
    min_period_retiming,
    rotate_nodes,
    unrotate_nodes,
)

from .conftest import csdfgs


def cycle_delay_sums(g):
    """Total delay of each simple cycle, keyed by the node tuple."""
    nxg = g.to_networkx()
    out = {}
    for cycle in nx.simple_cycles(nxg):
        delay = 0
        for i, u in enumerate(cycle):
            delay += g.delay(u, cycle[(i + 1) % len(cycle)])
        out[tuple(cycle)] = delay
    return out


class TestRotationPrimitive:
    @given(csdfgs())
    @settings(max_examples=50, deadline=None)
    def test_rotate_unrotate_identity(self, g):
        roots = g.roots()
        assume(roots and can_rotate(g, roots))
        before = g.copy()
        rotate_nodes(g, roots)
        assert is_legal(g)
        unrotate_nodes(g, roots)
        assert g.structurally_equal(before)

    @given(csdfgs(max_nodes=8))
    @settings(max_examples=30, deadline=None)
    def test_rotation_preserves_cycle_delays(self, g):
        roots = g.roots()
        assume(roots and can_rotate(g, roots))
        before = cycle_delay_sums(g)
        rotate_nodes(g, roots)
        assert cycle_delay_sums(g) == before

    @given(csdfgs())
    @settings(max_examples=30, deadline=None)
    def test_rotation_preserves_iteration_bound(self, g):
        roots = g.roots()
        assume(roots and can_rotate(g, roots))
        before = iteration_bound(g)
        rotate_nodes(g, roots)
        assert iteration_bound(g) == before


class TestRetimingFunction:
    @given(csdfgs(max_nodes=8), st.data())
    @settings(max_examples=40, deadline=None)
    def test_apply_matches_legality_predicate(self, g, data):
        r = {
            v: data.draw(st.integers(-2, 2), label=f"r({v})")
            for v in g.nodes()
        }
        if is_legal_retiming(g, r):
            out = apply_retiming(g, r)
            assert is_legal(out)
            assert cycle_delay_sums(out) == cycle_delay_sums(g)
        else:
            import pytest

            from repro.errors import IllegalRetimingError

            with pytest.raises(IllegalRetimingError):
                apply_retiming(g, r)


class TestLeisersonSaxe:
    @given(csdfgs(max_nodes=9))
    @settings(max_examples=25, deadline=None)
    def test_min_period_is_achieved_and_never_worse(self, g):
        period, r = min_period_retiming(g)
        retimed = apply_retiming(g, r)
        assert critical_path_length(retimed) == period
        assert period <= critical_path_length(g)

    @given(csdfgs(max_nodes=8))
    @settings(max_examples=20, deadline=None)
    def test_min_period_at_least_max_cycle_mean_floor(self, g):
        import math

        period, _ = min_period_retiming(g)
        # the clock period of any retiming is at least the max node time
        assert period >= max(g.time(v) for v in g.nodes())
