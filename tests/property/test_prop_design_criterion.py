"""Property tests: the paper's DESIGN criterion, pinned verbatim.

For every edge ``(u, v)`` of every schedule any engine produces, in
every optimiser mode::

    CB(v) + d(u, v) * L  >=  CE(u) + M(PE(u), PE(v); c(u, v)) + 1

checked by :func:`repro.qa.design_criterion_violations`, which
recomputes ``M`` straight from ``arch.hops`` and the cost model —
deliberately independent of the schedule validator, so the two oracles
cover each other.
"""

from hypothesis import given, settings

from repro.core import CycloConfig, cyclo_compact
from repro.perf.reference import reference_cyclo_compact
from repro.qa import design_criterion_violations

from .conftest import architectures, csdfgs

MODES = {
    "relaxed": CycloConfig(relaxation=True, max_iterations=6,
                           validate_each_step=False),
    "strict": CycloConfig(relaxation=False, max_iterations=6,
                          validate_each_step=False),
    "pipelined": CycloConfig(relaxation=True, max_iterations=6,
                             pipelined_pes=True, validate_each_step=False),
    "first-fit": CycloConfig(relaxation=True, max_iterations=6,
                             remap_strategy="first-fit",
                             validate_each_step=False),
}


def _assert_criterion(graph, arch, result, label):
    for tag, g, schedule in (
        ("startup", graph, result.initial_schedule),
        ("compacted", result.graph, result.schedule),
    ):
        violations = design_criterion_violations(g, arch, schedule)
        assert violations == [], f"{label}/{tag}: {violations}"


class TestFastEngine:
    @given(csdfgs(max_nodes=9), architectures(max_pes=6))
    @settings(max_examples=30, deadline=None)
    def test_relaxed_and_strict(self, g, arch):
        for label in ("relaxed", "strict"):
            result = cyclo_compact(g, arch, config=MODES[label])
            _assert_criterion(g, arch, result, label)

    @given(csdfgs(max_nodes=8), architectures(max_pes=6))
    @settings(max_examples=20, deadline=None)
    def test_pipelined_and_first_fit(self, g, arch):
        for label in ("pipelined", "first-fit"):
            result = cyclo_compact(g, arch, config=MODES[label])
            _assert_criterion(g, arch, result, label)


class TestReferenceEngine:
    @given(csdfgs(max_nodes=8), architectures(max_pes=5))
    @settings(max_examples=15, deadline=None)
    def test_reference_engine_same_criterion(self, g, arch):
        result = reference_cyclo_compact(g, arch, config=MODES["relaxed"])
        _assert_criterion(g, arch, result, "reference")
