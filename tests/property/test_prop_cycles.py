"""Property tests: three independent iteration-bound implementations
agree, and SCC structure behaves."""

from hypothesis import given, settings

from repro.graph import (
    iteration_bound,
    iteration_bound_exact,
    karp_maximum_cycle_ratio,
    recursive_core,
    scc_condensation,
    strongly_connected_components,
)

from .conftest import csdfgs


class TestBoundAgreement:
    @given(csdfgs(max_nodes=8))
    @settings(max_examples=30, deadline=None)
    def test_three_way_agreement(self, g):
        lawler = iteration_bound(g)
        karp = karp_maximum_cycle_ratio(g)
        exact = iteration_bound_exact(g)
        assert lawler == karp == exact


class TestSccProperties:
    @given(csdfgs())
    @settings(max_examples=40, deadline=None)
    def test_partition(self, g):
        comps = strongly_connected_components(g)
        seen = [v for comp in comps for v in comp]
        assert sorted(map(str, seen)) == sorted(map(str, g.nodes()))
        assert len(seen) == g.num_nodes  # no duplicates

    @given(csdfgs())
    @settings(max_examples=30, deadline=None)
    def test_condensation_acyclic(self, g):
        comps, edges = scc_condensation(g)
        # a DAG admits a topological order: Kahn over the condensation
        indeg = [0] * len(comps)
        adj: dict[int, list[int]] = {i: [] for i in range(len(comps))}
        for a, b in edges:
            adj[a].append(b)
            indeg[b] += 1
        frontier = [i for i, k in enumerate(indeg) if k == 0]
        seen = 0
        while frontier:
            node = frontier.pop()
            seen += 1
            for nxt in adj[node]:
                indeg[nxt] -= 1
                if indeg[nxt] == 0:
                    frontier.append(nxt)
        assert seen == len(comps)

    @given(csdfgs())
    @settings(max_examples=30, deadline=None)
    def test_core_iff_positive_bound(self, g):
        has_core = bool(recursive_core(g))
        assert has_core == (iteration_bound(g) > 0)
