"""Property tests: the exact oracle dominates every heuristic on tiny
instances."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import CompletelyConnected, LinearArray, Mesh2D
from repro.baselines import etf_schedule, exact_minimum_length
from repro.core import CycloConfig, cyclo_compact, start_up_schedule
from repro.graph import random_csdfg

FAST = CycloConfig(relaxation=True, max_iterations=8, validate_each_step=False)


def tiny_graph(seed):
    return random_csdfg(
        5, seed=seed, edge_prob=0.3, back_edge_prob=0.25, max_time=2,
        max_volume=2,
    )


def small_arch(pick):
    return [CompletelyConnected(2), LinearArray(3), Mesh2D(2, 2)][pick % 3]


class TestOracleDominance:
    @given(st.integers(0, 400), st.integers(0, 2))
    @settings(max_examples=25, deadline=None)
    def test_heuristics_never_beat_exact(self, seed, pick):
        g = tiny_graph(seed)
        arch = small_arch(pick)
        exact, witness = exact_minimum_length(g, arch)
        assert start_up_schedule(g, arch).length >= exact
        assert etf_schedule(g, arch).length >= exact
        # the witness itself is legal at exactly that length
        from repro.schedule import is_valid_schedule

        assert is_valid_schedule(g, arch, witness)

    @given(st.integers(0, 400), st.integers(0, 2))
    @settings(max_examples=15, deadline=None)
    def test_cyclo_placement_near_oracle_on_retimed_graph(self, seed, pick):
        g = tiny_graph(seed)
        arch = small_arch(pick)
        result = cyclo_compact(g, arch, config=FAST)
        exact, _ = exact_minimum_length(result.graph, arch)
        assert result.final_length >= exact
        assert result.final_length - exact <= 2
