"""Hypothesis strategies for CSDFGs, architectures and schedules."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.arch import (
    CompletelyConnected,
    Hypercube,
    LinearArray,
    Mesh2D,
    Ring,
    Star,
)
from repro.graph import random_csdfg


@st.composite
def csdfgs(draw, min_nodes=2, max_nodes=12, cyclic=True):
    """Random legal CSDFGs via the library's seeded generator."""
    n = draw(st.integers(min_nodes, max_nodes))
    seed = draw(st.integers(0, 10_000))
    edge_prob = draw(st.sampled_from([0.15, 0.3, 0.5]))
    back = draw(st.sampled_from([0.1, 0.3])) if cyclic else 0.0
    return random_csdfg(
        n,
        seed=seed,
        edge_prob=edge_prob,
        back_edge_prob=back,
        max_time=3,
        max_delay=3,
        max_volume=3,
    )


@st.composite
def architectures(draw, max_pes=8):
    """One of the library topologies with 2..max_pes processors."""
    kind = draw(
        st.sampled_from(["linear", "ring", "complete", "mesh", "cube", "star"])
    )
    if kind == "linear":
        return LinearArray(draw(st.integers(2, max_pes)))
    if kind == "ring":
        return Ring(draw(st.integers(3, max_pes)))
    if kind == "complete":
        return CompletelyConnected(draw(st.integers(2, max_pes)))
    if kind == "mesh":
        rows = draw(st.integers(1, 2))
        cols = draw(st.integers(2, max_pes // rows))
        return Mesh2D(rows, cols)
    if kind == "cube":
        return Hypercube(draw(st.integers(1, 3)))
    return Star(draw(st.integers(2, max_pes)))
