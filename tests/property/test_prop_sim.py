"""Property tests: the static validator and the dynamic simulator are
two implementations of the same execution model and must agree."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CycloConfig, cyclo_compact, start_up_schedule
from repro.schedule import is_valid_schedule
from repro.sim import SimulationError, simulate

from .conftest import architectures, csdfgs

FAST = CycloConfig(relaxation=True, max_iterations=8, validate_each_step=False)


class TestValidatorSimulatorAgreement:
    @given(csdfgs(max_nodes=9), architectures(max_pes=6))
    @settings(max_examples=40, deadline=None)
    def test_startup_schedules_simulate_clean(self, g, arch):
        s = start_up_schedule(g, arch)
        simulate(g, arch, s, iterations=5)  # raises on any violation

    @given(csdfgs(max_nodes=9), architectures(max_pes=6))
    @settings(max_examples=30, deadline=None)
    def test_compacted_schedules_simulate_clean(self, g, arch):
        result = cyclo_compact(g, arch, config=FAST)
        simulate(result.graph, arch, result.schedule, iterations=5)

    @given(csdfgs(max_nodes=8), architectures(max_pes=5), st.integers(0, 50))
    @settings(max_examples=30, deadline=None)
    def test_corrupted_length_caught_by_both(self, g, arch, salt):
        s = start_up_schedule(g, arch)
        if s.length <= s.makespan:
            return  # nothing to corrupt: length is pinned by placements
        s._length = s.length - 1  # bypass the setter guard on purpose
        assert not is_valid_schedule(g, arch, s)
        with pytest.raises(SimulationError):
            simulate(g, arch, s, iterations=6)
