"""Property tests: architecture metric-space invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import route

from .conftest import architectures


class TestDistanceMetric:
    @given(architectures())
    @settings(max_examples=50, deadline=None)
    def test_identity(self, arch):
        assert all(arch.hops(p, p) == 0 for p in arch.processors)

    @given(architectures())
    @settings(max_examples=50, deadline=None)
    def test_symmetry(self, arch):
        for a in arch.processors:
            for b in arch.processors:
                assert arch.hops(a, b) == arch.hops(b, a)

    @given(architectures())
    @settings(max_examples=30, deadline=None)
    def test_triangle_inequality(self, arch):
        pes = list(arch.processors)
        for a in pes:
            for b in pes:
                for c in pes:
                    assert arch.hops(a, c) <= arch.hops(a, b) + arch.hops(b, c)

    @given(architectures())
    @settings(max_examples=50, deadline=None)
    def test_adjacent_iff_distance_one(self, arch):
        for a in arch.processors:
            for b in arch.neighbors(a):
                assert arch.hops(a, b) == 1


class TestRouting:
    @given(architectures(), st.data())
    @settings(max_examples=50, deadline=None)
    def test_route_length_equals_hops(self, arch, data):
        src = data.draw(st.integers(0, arch.num_pes - 1), label="src")
        dst = data.draw(st.integers(0, arch.num_pes - 1), label="dst")
        path = route(arch, src, dst)
        assert path[0] == src and path[-1] == dst
        assert len(path) - 1 == arch.hops(src, dst)
        for a, b in zip(path, path[1:]):
            assert arch.hops(a, b) == 1


class TestCommCost:
    @given(architectures(), st.integers(1, 9))
    @settings(max_examples=40, deadline=None)
    def test_store_and_forward_proportional(self, arch, volume):
        for a in arch.processors:
            for b in arch.processors:
                assert arch.comm_cost(a, b, volume) == arch.hops(a, b) * volume
