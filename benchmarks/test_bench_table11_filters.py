"""Experiment TAB11: the paper's Table 11 — 5th-order elliptic wave
filter and lattice filter, slow-down factor 3, both remapping policies,
on all five architectures.

The filter graphs are reconstructions, so absolute lengths differ from
the paper's 99-126 scale; the published *shape* is asserted instead:

* cyclo-compaction always shortens the start-up schedule,
* remapping with relaxation is never worse than without,
* the completely connected architecture ties or wins the "after" row.
"""

import pytest
from _report import write_report

from repro.analysis import format_table11, run_grid
from repro.arch import paper_architectures
from repro.core import CycloConfig
from repro.graph import slowdown
from repro.workloads import elliptic_wave_filter, lattice_filter

SLOWDOWN = 3
ARCH_ORDER = ("com", "lin", "rin", "2-d", "hyp")

WORKLOADS = {
    "Elliptic Filter": lambda: slowdown(elliptic_wave_filter(), SLOWDOWN),
    "Lattice Filter": lambda: slowdown(lattice_filter(8), SLOWDOWN),
}


def _cfg(relaxation: bool) -> CycloConfig:
    return CycloConfig(
        relaxation=relaxation, max_iterations=80, validate_each_step=False
    )


@pytest.fixture(scope="module")
def table11():
    archs = paper_architectures(8)
    rows = []
    cells_by_key = {}
    for workload, build in WORKLOADS.items():
        graph = build()
        for relaxation, label in ((False, "w/o"), (True, "with")):
            cells = run_grid(
                graph, archs, relaxation=relaxation, config=_cfg(relaxation)
            )
            rows.append((workload, label, cells))
            cells_by_key[(workload, label)] = cells
    write_report("table11_filters", format_table11(rows, ARCH_ORDER))
    return cells_by_key


@pytest.mark.parametrize("workload", list(WORKLOADS))
@pytest.mark.parametrize("relaxation", [False, True])
def test_bench_table11_cell(benchmark, workload, relaxation, table11):
    """Timing benchmark: one full (workload x policy) row."""
    graph = WORKLOADS[workload]()
    archs = paper_architectures(8)

    cells = benchmark.pedantic(
        lambda: run_grid(
            graph, archs, relaxation=relaxation, config=_cfg(relaxation)
        ),
        rounds=2,
        iterations=1,
    )
    for key, cell in cells.items():
        assert cell.after <= cell.init, (workload, key)


def test_bench_table11_relaxation_never_worse(benchmark, table11):
    table11 = benchmark(lambda: table11)
    for workload in WORKLOADS:
        with_relax = table11[(workload, "with")]
        without = table11[(workload, "w/o")]
        for key in ARCH_ORDER:
            assert with_relax[key].after <= without[key].after, (workload, key)


def test_bench_table11_complete_wins(benchmark, table11):
    table11 = benchmark(lambda: table11)
    for workload in WORKLOADS:
        cells = table11[(workload, "with")]
        best = min(cells[k].after for k in ARCH_ORDER)
        assert cells["com"].after <= best + 1, workload


def test_bench_table11_compaction_everywhere(benchmark, table11):
    table11 = benchmark(lambda: table11)
    for (workload, label), cells in table11.items():
        for key in ARCH_ORDER:
            assert cells[key].after < cells[key].init, (workload, label, key)
