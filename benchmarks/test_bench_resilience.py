"""Experiment EXT-RESILIENCE: repair cost vs from-scratch rescheduling.

After a PE failure a degraded machine needs a new legal schedule.  The
bench compares the local evacuate-and-remap repair against a full
cyclo-compaction from scratch on the surviving topology, recording
both the wall-clock cost and the schedule-length regression of each.
The observed worst-case local-repair regression is the bound quoted in
``docs/resilience.md``.
"""

import time

from _report import write_report

from repro.arch import make_architecture
from repro.core import CycloConfig, cyclo_compact
from repro.resilience import PEFault, repair_schedule
from repro.schedule import collect_violations
from repro.workloads import make_workload

CFG = CycloConfig(max_iterations=40, validate_each_step=False)

PAIRS = [
    ("figure7", "mesh"),
    ("figure7", "hypercube"),
    ("biquad4", "ring"),
    ("diffeq", "complete"),
]


def _cases():
    for workload, kind in PAIRS:
        graph = make_workload(workload)
        arch = make_architecture(kind, 8)
        result = cyclo_compact(graph, arch, config=CFG)
        used = sorted(
            {result.schedule.placement(v).pe for v in result.graph.nodes()}
        )
        yield workload, kind, result.graph, arch, result.schedule, used[0]


def test_bench_repair_vs_scratch(benchmark):
    cases = list(_cases())

    def run():
        rows = []
        for workload, kind, graph, arch, schedule, victim in cases:
            t0 = time.perf_counter()
            rep = repair_schedule(graph, arch, schedule, [PEFault(victim)])
            repair_s = time.perf_counter() - t0
            t0 = time.perf_counter()
            scratch = cyclo_compact(graph, rep.degraded, config=CFG)
            scratch_s = time.perf_counter() - t0
            rows.append(
                (workload, kind, rep, repair_s, scratch.final_length,
                 scratch_s)
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = []
    worst = 1.0
    for workload, kind, rep, repair_s, scratch_len, scratch_s in rows:
        assert collect_violations(rep.graph, rep.degraded, rep.schedule) == []
        worst = max(worst, rep.regression)
        speedup = scratch_s / repair_s if repair_s else float("inf")
        lines.append(
            f"{workload:9s} {kind:9s} {rep.strategy:11s} "
            f"L {rep.original_length:3d} -> {rep.repaired_length:3d} "
            f"({rep.regression:4.2f}x)  scratch L {scratch_len:3d}  "
            f"repair {repair_s * 1e3:7.1f} ms vs scratch "
            f"{scratch_s * 1e3:7.1f} ms ({speedup:4.1f}x faster)"
        )
    lines.append(f"worst repair regression observed: {worst:.2f}x")
    write_report("resilience_repair", "\n".join(lines))
    # the configurable default budget (1.5x) really is an upper bound:
    # repair falls back to re-optimisation rather than exceed it
    for _, _, rep, _, _, _ in rows:
        assert rep.regression <= 1.5 or rep.strategy == "reoptimized"


def test_bench_repair_speed(benchmark):
    """Steady-state cost of one local PE-failure repair."""
    workload, kind, graph, arch, schedule, victim = next(_cases())
    rep = benchmark(
        lambda: repair_schedule(graph, arch, schedule, [PEFault(victim)])
    )
    assert collect_violations(rep.graph, rep.degraded, rep.schedule) == []
