"""Experiment EXT-SPEEDUP: fast-path engine vs the reference engine.

Times ``cyclo_compact`` (comm-cost cache, interval-indexed table,
incremental PSL, pruned slot search) against
``reference_cyclo_compact`` (the preserved pre-optimisation engine) on
the 19-node workload across every architecture kind, asserting first
that both engines produce **identical schedules** — the speedup claim
is only meaningful for equivalent output.

Writes ``BENCH_speedup.json`` at the repo root with the per-topology
ratios.  ``BENCH_QUICK=1`` trims to the mesh topology with a relaxed
threshold (CI smoke mode); the full run requires >= 3x on the mesh.
"""

import json
import os
import time
from pathlib import Path

from _report import write_report

from repro.arch import ARCHITECTURE_KINDS, make_architecture
from repro.core import CycloConfig, cyclo_compact
from repro.perf.reference import reference_cyclo_compact
from repro.workloads import figure7_csdfg

REPO_ROOT = Path(__file__).resolve().parent.parent
OUT_JSON = REPO_ROOT / "BENCH_speedup.json"

CFG = CycloConfig(max_iterations=60, validate_each_step=False)
BEST_OF = 12

# smallest valid PE count per kind at/around the paper's 8
PE_COUNTS = {"tree": 7, "torus": 9}

QUICK = os.environ.get("BENCH_QUICK") == "1"


def _best_of(fn, repeats):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - t0
        if elapsed < best:
            best = elapsed
    return best


def test_bench_fastpath_speedup():
    graph = figure7_csdfg()
    kinds = ["mesh"] if QUICK else sorted(ARCHITECTURE_KINDS)
    repeats = 3 if QUICK else BEST_OF
    rows = []
    for kind in kinds:
        num_pes = PE_COUNTS.get(kind, 8)
        arch = make_architecture(kind, num_pes)

        fast = cyclo_compact(graph, arch, config=CFG)
        ref = reference_cyclo_compact(graph, arch, config=CFG)
        assert fast.schedule.same_placements(ref.schedule), kind
        assert fast.trace == ref.trace, kind
        assert fast.final_length == ref.final_length, kind

        t_fast = _best_of(
            lambda: cyclo_compact(graph, arch, config=CFG), repeats
        )
        t_ref = _best_of(
            lambda: reference_cyclo_compact(graph, arch, config=CFG), repeats
        )
        rows.append(
            {
                "arch": kind,
                "num_pes": num_pes,
                "final_length": fast.final_length,
                "fast_seconds": round(t_fast, 6),
                "reference_seconds": round(t_ref, 6),
                "speedup": round(t_ref / t_fast, 3),
            }
        )

    payload = {
        "workload": graph.name,
        "nodes": graph.num_nodes,
        "max_iterations": CFG.max_iterations,
        "best_of": repeats,
        "quick": QUICK,
        "results": rows,
    }
    OUT_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    lines = [
        f"{r['arch']:>10s} ({r['num_pes']} PEs): "
        f"ref {r['reference_seconds'] * 1000:7.2f}ms / "
        f"fast {r['fast_seconds'] * 1000:7.2f}ms = {r['speedup']:.2f}x"
        for r in rows
    ]
    write_report("fastpath_speedup", "\n".join(lines))

    by_kind = {r["arch"]: r["speedup"] for r in rows}
    if QUICK:
        assert by_kind["mesh"] > 1.0, by_kind
    else:
        # the PR's acceptance bar: >= 3x on the 19-node mesh cell
        assert by_kind["mesh"] >= 3.0, by_kind
        # every topology must at least profit from the fast path
        assert all(s > 1.0 for s in by_kind.values()), by_kind
