"""Experiment EXT-REFINE: compaction + local-search refinement rounds.

The high-level :func:`repro.core.optimize` driver alternates the
paper's cyclo-compaction with a single-task local search.  On the
19-node workload this closes the remaining gap to the paper's published
lengths (linear array 8 -> 7); the bench records the per-architecture
comparison and asserts refinement never loses.
"""

from _report import write_report

from repro.arch import paper_architectures
from repro.core import CycloConfig, cyclo_compact, optimize
from repro.workloads import figure7_csdfg, make_workload

CFG = CycloConfig(max_iterations=60, validate_each_step=False)


def test_bench_optimize_vs_single_pass(benchmark):
    graph = figure7_csdfg()
    archs = paper_architectures(8)

    def run():
        rows = []
        for key, arch in archs.items():
            single = cyclo_compact(graph, arch, config=CFG).final_length
            multi = optimize(graph, arch, config=CFG).final_length
            rows.append((key, single, multi))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"{key}: cyclo={single} cyclo+refine={multi}"
        for key, single, multi in rows
    ]
    write_report("refinement_19node", "\n".join(lines))
    for key, single, multi in rows:
        assert multi <= single, key


def test_bench_refine_speed(benchmark):
    """Cost of one full optimize() run on a mid-size workload."""
    graph = make_workload("lattice8")
    arch = paper_architectures(8)["2-d"]
    result = benchmark.pedantic(
        lambda: optimize(graph, arch, config=CFG), rounds=2, iterations=1
    )
    assert result.final_length <= result.initial_length
