"""Experiment ABL-PIPE: pipelined vs ordinary processing elements.

The paper's §2 notes that pipelined PEs may issue a new task before the
previous one completes.  This bench quantifies the effect: on
multiplication-heavy workloads (2-cycle ops), pipelined PEs should
shorten or match the compacted schedule on every architecture.
"""

from _report import write_report

from repro.arch import paper_architectures
from repro.core import CycloConfig, cyclo_compact
from repro.graph import slowdown
from repro.workloads import elliptic_wave_filter, figure7_csdfg, volterra


def _run(graph, archs, pipelined):
    cfg = CycloConfig(
        pipelined_pes=pipelined, max_iterations=60, validate_each_step=False
    )
    return {
        key: cyclo_compact(graph, arch, config=cfg).final_length
        for key, arch in archs.items()
    }


def test_bench_pipelined_pes(benchmark):
    archs = paper_architectures(8)
    workloads = {
        "figure7": figure7_csdfg(),
        "volterra3": volterra(3),
        "elliptic(slow3)": slowdown(elliptic_wave_filter(), 3),
    }

    def run_all():
        out = {}
        for name, graph in workloads.items():
            out[name] = {
                "plain": _run(graph, archs, False),
                "piped": _run(graph, archs, True),
            }
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = []
    wins = ties = losses = 0
    for name, modes in results.items():
        for key in archs:
            plain, piped = modes["plain"][key], modes["piped"][key]
            lines.append(f"{name:16s} {key:4s} plain={plain:3d} piped={piped:3d}")
            if piped < plain:
                wins += 1
            elif piped == plain:
                ties += 1
            else:
                losses += 1
    lines.append(f"\npipelined wins={wins} ties={ties} losses={losses}")
    write_report("ablation_pipelined", "\n".join(lines))
    # pipelining must help in aggregate (heuristic noise allows a few
    # per-cell losses)
    assert wins >= losses
