"""Experiment ABL-Z: convergence of the cyclo-compaction iteration
(§5's "fast convergence characteristic" claim).

Runs long optimisations and records where the best length is reached;
the paper's examples converge within a handful of passes, and the claim
checked here is that the best schedule arrives within O(|V|) rotations.
"""

import json

from _report import OUT_DIR, write_report

from repro.analysis import convergence_study
from repro.arch import paper_architectures
from repro.core import CompactionTrace
from repro.graph import slowdown
from repro.workloads import elliptic_wave_filter, figure1_csdfg, figure7_csdfg


def test_bench_convergence_figure1(benchmark):
    from repro.workloads import figure1_mesh

    graph, mesh = figure1_csdfg(), figure1_mesh()
    report = benchmark(
        lambda: convergence_study(graph, mesh, max_iterations=30)
    )
    assert report.passes_to_best <= 3 * graph.num_nodes
    write_report(
        "convergence_figure1",
        f"lengths: {list(report.lengths)}\n"
        f"best {report.best} reached at pass {report.passes_to_best}",
    )
    # archive the raw trajectory via the shared trace serialisation and
    # pin the JSON round-trip on a real optimiser run
    trace_path = OUT_DIR / "convergence_figure1_trace.json"
    trace_path.write_text(report.trace.to_json(indent=2) + "\n")
    loaded = CompactionTrace.from_json(trace_path.read_text())
    assert loaded.to_dict() == report.trace.to_dict()
    assert json.loads(trace_path.read_text())["initial_length"] == (
        report.lengths[0]
    )


def test_bench_convergence_19node(benchmark):
    graph = figure7_csdfg()
    archs = paper_architectures(8)

    def run():
        return {
            key: convergence_study(graph, arch, max_iterations=120)
            for key, arch in archs.items()
        }

    reports = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = []
    for key, report in reports.items():
        lines.append(
            f"{key}: init {report.lengths[0]} best {report.best} "
            f"at pass {report.passes_to_best}"
        )
        # O(|V|) convergence claim (|V| = 19 -> allow 6|V| of headroom)
        assert report.passes_to_best <= 6 * graph.num_nodes
    write_report("convergence_19node", "\n".join(lines))


def test_bench_convergence_elliptic(benchmark):
    graph = slowdown(elliptic_wave_filter(), 3)
    arch = paper_architectures(8)["2-d"]
    report = benchmark.pedantic(
        lambda: convergence_study(graph, arch, max_iterations=120),
        rounds=1,
        iterations=1,
    )
    assert report.best < report.lengths[0]
    assert report.passes_to_best <= 6 * graph.num_nodes
    write_report(
        "convergence_elliptic",
        f"init {report.lengths[0]} best {report.best} "
        f"at pass {report.passes_to_best}",
    )
