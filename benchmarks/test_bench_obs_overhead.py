"""Tier-2 guard: the observability layer is free when switched off.

Every hot path of the optimiser is annotated with spans and counters
(see ``src/repro/obs``); with no sink installed each annotation is one
flag check.  This guard demonstrates, on the paper's 19-node workload
on the hypercube, that the *disabled* instrumentation costs < 1% of a
``cyclo_compact`` run:

1. run the optimiser instrumented (in-memory sink) and count **every
   call** it makes into the metrics facade — the module helpers are
   shimmed with counting wrappers, so a single ``inc(name, 5)`` is
   charged as one call, not five,
2. count spans exactly from the sink (one recorded span == one
   ``span()`` call plus a no-op ``__enter__``/``__exit__`` pair when
   disabled; charged as three operations to stay conservative),
3. measure the per-operation cost of the disabled fast path directly,
4. assert ``operations x per-op cost`` is under the 1% budget of the
   measured (sink-free) run time.

The budget arithmetic is deliberately used instead of a raw A/B wall-
clock comparison: the disabled path cannot be toggled out of the code
at runtime, and two timed runs of the same function routinely differ
by more than 1% on shared CI hardware, so a naive comparison would be
flaky while this bound is stable *and* strictly conservative (it
charges every operation the full measured no-op cost).

Note the unconditional hot-object tallies (``CommCostCache.hits``,
``ScheduleTable.probes``, ...) are plain integer adds that exist with
or without observability — they are part of the baseline, not
overhead, and ``publish_stats`` folds them into the registry with a
handful of calls per *run*, all counted here.
"""

from time import perf_counter_ns

from _report import write_report

from repro.arch import paper_architectures
from repro.core import CycloConfig, cyclo_compact
from repro.obs import InMemorySink, enabled, metrics, sink_installed, span
from repro.workloads import figure7_csdfg

CFG = CycloConfig(max_iterations=60, validate_each_step=False)

#: The metrics-facade entry points the instrumented packages call.
FACADE = ("inc", "observe", "set_gauge")


def _run_once(graph, arch):
    return cyclo_compact(graph, arch, config=CFG)


def _min_wall_ns(fn, repeats=5):
    best = None
    for _ in range(repeats):
        t0 = perf_counter_ns()
        fn()
        dt = perf_counter_ns() - t0
        if best is None or dt < best:
            best = dt
    return best


def _counting_shims():
    """Wrap the metrics facade in exact call counters.

    The instrumented modules bind the *module* (``from repro.obs
    import metrics``) and resolve ``metrics.inc`` per call, so
    rebinding the module attribute intercepts every invocation.
    Returns ``(counts, restore)``.
    """
    counts = {name: 0 for name in FACADE}
    originals = {name: getattr(metrics, name) for name in FACADE}

    def wrap(name, fn):
        def counted(*args, **kwargs):
            counts[name] += 1
            return fn(*args, **kwargs)
        return counted

    for name, fn in originals.items():
        setattr(metrics, name, wrap(name, fn))

    def restore():
        for name, fn in originals.items():
            setattr(metrics, name, fn)

    return counts, restore


def test_obs_disabled_overhead_under_1_percent():
    graph = figure7_csdfg()
    arch = paper_architectures(8)["hyp"]
    assert not enabled()

    # 1+2. exact instrumentation call counts for one run
    sink = InMemorySink()
    metrics.reset()
    counts, restore = _counting_shims()
    try:
        with sink_installed(sink):
            instrumented = _run_once(graph, arch)
    finally:
        restore()
    span_count = len(sink.spans())
    facade_calls = sum(counts.values())
    metrics.reset()
    assert span_count > 0 and counts["inc"] > 0

    # 3. per-operation cost of the disabled fast path
    n = 100_000
    t0 = perf_counter_ns()
    for _ in range(n):
        span("probe")
    span_cost = (perf_counter_ns() - t0) / n

    t0 = perf_counter_ns()
    for _ in range(n):
        metrics.inc("probe")
        metrics.observe("probe", 1.0)
        metrics.set_gauge("probe", 1)
    facade_cost = (perf_counter_ns() - t0) / (3 * n)
    assert not enabled()
    metrics.reset()

    # 4. total disabled overhead vs. the sink-free run time
    overhead_ns = span_count * 3 * span_cost + facade_calls * facade_cost
    run_ns = _min_wall_ns(lambda: _run_once(graph, arch))
    ratio = overhead_ns / run_ns
    write_report(
        "obs_overhead",
        f"19-node workload on hypercube, {CFG.max_iterations} passes\n"
        f"spans/run: {span_count}, facade calls/run: {facade_calls} "
        f"(inc {counts['inc']}, observe {counts['observe']}, "
        f"set_gauge {counts['set_gauge']})\n"
        f"disabled span() cost: {span_cost:.1f} ns, "
        f"disabled facade cost: {facade_cost:.1f} ns\n"
        f"run (no sink): {run_ns / 1e6:.2f} ms, "
        f"bounded overhead: {overhead_ns / 1e6:.4f} ms "
        f"({ratio * 100:.3f}%)",
    )
    assert ratio < 0.01, (
        f"disabled instrumentation bound {ratio * 100:.2f}% exceeds the "
        f"1% budget ({span_count} spans, {facade_calls} facade calls, "
        f"run {run_ns / 1e6:.1f} ms)"
    )
    # sanity: the instrumented run still converged to the same length
    plain = _run_once(graph, arch)
    assert plain.final_length == instrumented.final_length


def test_no_optional_dependency_group_needed():
    """pyproject.toml needs no extra for observability: repro.obs is
    stdlib-only (pinned in tests/unit/test_obs_stdlib.py) and always
    importable."""
    import repro.obs  # noqa: F401

    import tomllib
    from pathlib import Path

    pyproject = Path(__file__).resolve().parents[1] / "pyproject.toml"
    data = tomllib.loads(pyproject.read_text())
    extras = data.get("project", {}).get("optional-dependencies", {})
    assert "obs" not in extras and "observability" not in extras
