"""Tier-2 guard: the observability layer is free when switched off.

Every hot path of the optimiser is annotated with spans and counters
(see ``src/repro/obs``); with no sink installed each annotation is one
flag check.  This guard demonstrates, on the paper's 19-node workload
on the hypercube, that the *disabled* instrumentation costs < 5% of a
``cyclo_compact`` run:

1. run the optimiser instrumented (in-memory sink) and count every
   span and metric operation it performs,
2. measure the per-operation cost of the disabled fast path directly,
3. assert ``operations x per-op cost`` is under the 5% budget of the
   measured (sink-free) run time.

The budget arithmetic is deliberately used instead of a raw A/B wall-
clock comparison: the disabled path cannot be toggled out of the code
at runtime, and two timed runs of the same function routinely differ
by more than 5% on shared CI hardware, so a naive comparison would be
flaky while this bound is stable *and* strictly conservative (it
charges every operation the full measured no-op cost).
"""

from time import perf_counter_ns

from _report import write_report

from repro.arch import paper_architectures
from repro.core import CycloConfig, cyclo_compact
from repro.obs import InMemorySink, enabled, metrics, sink_installed, span
from repro.workloads import figure7_csdfg

CFG = CycloConfig(max_iterations=60, validate_each_step=False)


def _run_once(graph, arch):
    return cyclo_compact(graph, arch, config=CFG)


def _min_wall_ns(fn, repeats=5):
    best = None
    for _ in range(repeats):
        t0 = perf_counter_ns()
        fn()
        dt = perf_counter_ns() - t0
        if best is None or dt < best:
            best = dt
    return best


def test_obs_disabled_overhead_under_5_percent():
    graph = figure7_csdfg()
    arch = paper_architectures(8)["hyp"]
    assert not enabled()

    # 1. count the instrumentation work one run performs
    sink = InMemorySink()
    metrics.reset()
    with sink_installed(sink):
        instrumented = _run_once(graph, arch)
    span_count = len(sink.spans())
    # the exact number of inc() calls is not recoverable from counter
    # values (some calls add n > 1), so over-approximate with the
    # summed values: every counted unit is charged as a full call
    inc_calls = sum(c.value for c in metrics.REGISTRY.counters.values())
    metrics.reset()
    assert span_count > 0 and inc_calls > 0

    # 2. per-operation cost of the disabled fast path
    n = 100_000
    t0 = perf_counter_ns()
    for _ in range(n):
        span("probe")
    span_cost = (perf_counter_ns() - t0) / n

    t0 = perf_counter_ns()
    for _ in range(n):
        metrics.inc("probe")
    inc_cost = (perf_counter_ns() - t0) / n
    assert not enabled()

    # 3. total disabled overhead vs. the sink-free run time
    overhead_ns = span_count * 3 * span_cost + inc_calls * inc_cost
    run_ns = _min_wall_ns(lambda: _run_once(graph, arch))
    ratio = overhead_ns / run_ns
    write_report(
        "obs_overhead",
        f"19-node workload on hypercube, {CFG.max_iterations} passes\n"
        f"spans/run: {span_count}, metric increments/run: {inc_calls}\n"
        f"disabled span() cost: {span_cost:.1f} ns, "
        f"disabled inc() cost: {inc_cost:.1f} ns\n"
        f"run (no sink): {run_ns / 1e6:.2f} ms, "
        f"bounded overhead: {overhead_ns / 1e6:.4f} ms "
        f"({ratio * 100:.3f}%)",
    )
    assert ratio < 0.05, (
        f"disabled instrumentation bound {ratio * 100:.2f}% exceeds the "
        f"5% budget ({span_count} spans, {inc_calls} increments, "
        f"run {run_ns / 1e6:.1f} ms)"
    )
    # sanity: the instrumented run still converged to the same length
    plain = _run_once(graph, arch)
    assert plain.final_length == instrumented.final_length


def test_no_optional_dependency_group_needed():
    """pyproject.toml needs no extra for observability: repro.obs is
    stdlib-only (pinned in tests/unit/test_obs_stdlib.py) and always
    importable."""
    import repro.obs  # noqa: F401

    import tomllib
    from pathlib import Path

    pyproject = Path(__file__).resolve().parents[1] / "pyproject.toml"
    data = tomllib.loads(pyproject.read_text())
    extras = data.get("project", {}).get("optional-dependencies", {})
    assert "obs" not in extras and "observability" not in extras
