"""Experiment EXT-UNFOLD: unfolding-based rate optimisation (extension).

Fractional iteration bounds are unreachable at unfolding factor 1;
this bench sweeps factors 1-3 on a fractional-bound workload and on
the paper's 19-node graph, checking that the effective per-iteration
initiation interval is non-increasing in the factor and bounded below
by the fractional iteration bound.
"""

from fractions import Fraction

from _report import write_report

from repro.analysis import unfolding_study
from repro.arch import CompletelyConnected, Mesh2D
from repro.core import CycloConfig
from repro.graph import chain_csdfg, iteration_bound
from repro.workloads import figure7_csdfg

CFG = CycloConfig(max_iterations=40, validate_each_step=False)


def test_bench_unfolding_fractional_chain(benchmark):
    graph = chain_csdfg(3, time=1, loop_delay=2)  # bound 3/2
    arch = CompletelyConnected(6)

    points = benchmark.pedantic(
        lambda: unfolding_study(graph, arch, factors=(1, 2, 4), config=CFG),
        rounds=2,
        iterations=1,
    )
    lines = [
        f"f={p.factor}: L={p.length} effective={p.effective} (bound {p.bound})"
        for p in points
    ]
    write_report("unfolding_chain", "\n".join(lines))
    assert iteration_bound(graph) == Fraction(3, 2)
    effectives = [p.effective for p in points]
    assert all(e >= Fraction(3, 2) for e in effectives)
    # factor 2 realises the fractional rate the factor-1 schedule cannot
    assert effectives[1] < effectives[0]


def test_bench_unfolding_19node(benchmark):
    graph = figure7_csdfg()
    arch = Mesh2D(2, 4)

    points = benchmark.pedantic(
        lambda: unfolding_study(graph, arch, factors=(1, 2), config=CFG),
        rounds=1,
        iterations=1,
    )
    lines = [
        f"f={p.factor}: L={p.length} effective={float(p.effective):.2f} "
        f"(bound {p.bound})"
        for p in points
    ]
    write_report("unfolding_19node", "\n".join(lines))
    for p in points:
        assert p.effective >= p.bound
