"""Experiments TAB1-2 .. TAB9-10: the 19-node CSDFG of Figure 7 on the
paper's five 8-PE architectures (Tables 1-10).

For each architecture the bench regenerates the paper's (start-up
table, compacted table) pair and checks the published shape: start-up
lengths 12-15 compacting to 5-8, the completely connected machine best,
the linear array not better than the richer topologies.

Paper-reported lengths (init -> after): completely connected 12 -> 5,
linear array 13 -> 7, ring 15 -> 7, 2-D mesh 13 -> 6, 3-cube 13 -> 6.
"""

import pytest
from _report import write_report

from repro.analysis import format_cells, run_cell
from repro.arch import paper_architectures
from repro.core import CycloConfig
from repro.schedule import render_table

CFG = CycloConfig(max_iterations=100, validate_each_step=False)

#: (arch key, paper init, paper after, paper table numbers)
PAPER_ROWS = {
    "com": (12, 5, "Tables 1-2"),
    "lin": (13, 7, "Tables 3-4"),
    "rin": (15, 7, "Tables 5-6"),
    "2-d": (13, 6, "Tables 7-8"),
    "hyp": (13, 6, "Tables 9-10"),
}


@pytest.fixture(scope="module")
def grid_cells():
    """All five cells, shared across this module's shape assertions."""
    from repro.analysis import run_grid
    from repro.workloads import figure7_csdfg

    cells = run_grid(figure7_csdfg(), paper_architectures(8), config=CFG)
    lines = [format_cells(cells), ""]
    for key, (p_init, p_after, tables) in PAPER_ROWS.items():
        cell = cells[key]
        lines.append(
            f"{tables} ({key}): paper {p_init} -> {p_after}, "
            f"measured {cell.init} -> {cell.after}"
        )
    write_report("tables_1_10_19node", "\n".join(lines))
    return cells


@pytest.mark.parametrize("key", list(PAPER_ROWS))
def test_bench_19node_architecture(benchmark, key, grid_cells):
    from repro.workloads import figure7_csdfg

    arch = paper_architectures(8)[key]
    graph = figure7_csdfg()

    cell, result = benchmark.pedantic(
        lambda: run_cell(graph, arch, config=CFG), rounds=3, iterations=1
    )
    p_init, p_after, _ = PAPER_ROWS[key]
    # start-up band (paper: 12-15)
    assert abs(cell.init - p_init) <= 3, (key, cell.init)
    # compacted band (paper: 5-7; allow +2 for the reconstructed graph)
    assert p_after - 1 <= cell.after <= p_after + 2, (key, cell.after)
    # emit the two tables the paper prints for this architecture
    write_report(
        f"table_19node_{key}",
        render_table(
            result.initial_schedule, title=f"start-up schedule ({key})"
        )
        + "\n\n"
        + render_table(result.schedule, title=f"after cyclo-compaction ({key})"),
    )


def test_bench_19node_ordering(benchmark, grid_cells):
    cells = benchmark(lambda: grid_cells)
    best = min(c.after for c in cells.values())
    assert cells["com"].after == best
    assert cells["lin"].after >= min(
        cells[k].after for k in ("com", "2-d", "hyp")
    )
