"""Substrate performance benches: scheduler scaling and hot kernels.

Not a paper table — engineering benches that keep the implementation's
cost model honest: scheduling wall-time vs graph size, the all-pairs
distance computation, and the schedule validator.
"""

import pytest

from repro.arch import Hypercube, Mesh2D, make_architecture
from repro.core import CycloConfig, cyclo_compact, start_up_schedule
from repro.graph import random_csdfg
from repro.schedule import collect_violations


@pytest.mark.parametrize("num_nodes", [20, 40, 80])
def test_bench_startup_scaling(benchmark, num_nodes):
    graph = random_csdfg(num_nodes, seed=42, edge_prob=0.15, back_edge_prob=0.1)
    arch = Mesh2D(2, 4)
    schedule = benchmark(lambda: start_up_schedule(graph, arch))
    assert schedule.num_tasks == num_nodes


@pytest.mark.parametrize("num_nodes", [20, 40])
def test_bench_cyclo_scaling(benchmark, num_nodes):
    graph = random_csdfg(num_nodes, seed=7, edge_prob=0.15, back_edge_prob=0.1)
    arch = Mesh2D(2, 4)
    cfg = CycloConfig(max_iterations=20, validate_each_step=False)
    result = benchmark.pedantic(
        lambda: cyclo_compact(graph, arch, config=cfg), rounds=3, iterations=1
    )
    assert result.final_length <= result.initial_length


@pytest.mark.parametrize("kind,pes", [("mesh", 64), ("hypercube", 64), ("complete", 64)])
def test_bench_distance_matrix(benchmark, kind, pes):
    arch = benchmark(lambda: make_architecture(kind, pes))
    assert arch.num_pes == pes
    assert arch.diameter >= 1


def test_bench_validator(benchmark):
    graph = random_csdfg(60, seed=3, edge_prob=0.2, back_edge_prob=0.1)
    arch = Hypercube(3)
    schedule = start_up_schedule(graph, arch)
    violations = benchmark(lambda: collect_violations(graph, arch, schedule))
    assert violations == []
