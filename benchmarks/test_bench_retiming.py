"""Retiming substrate benches: Leiserson–Saxe vs rotation-based
pipelining.

Checks the division of labour DESIGN.md calls out: explicit LS retiming
minimises the *unlimited-resource* critical path, while rotation-based
cyclo-compaction optimises the *resource- and communication-
constrained* schedule; LS's optimum lower-bounds nothing once resources
are finite, but on a completely connected machine with enough PEs the
two land close.
"""

from _report import write_report

from repro.arch import CompletelyConnected
from repro.core import CycloConfig, cyclo_compact
from repro.graph import critical_path_length, random_csdfg
from repro.retiming import apply_retiming, min_period_retiming
from repro.workloads import elliptic_wave_filter, figure7_csdfg


def test_bench_leiserson_saxe_elliptic(benchmark):
    graph = elliptic_wave_filter()
    period, retiming = benchmark(lambda: min_period_retiming(graph))
    retimed = apply_retiming(graph, retiming)
    assert critical_path_length(retimed) == period
    assert period <= critical_path_length(graph)
    write_report(
        "retiming_elliptic",
        f"critical path {critical_path_length(graph)} -> {period} "
        f"(Leiserson-Saxe, unlimited PEs)",
    )


def test_bench_leiserson_saxe_scaling(benchmark):
    graph = random_csdfg(60, seed=9, edge_prob=0.12, back_edge_prob=0.12)
    period, _ = benchmark.pedantic(
        lambda: min_period_retiming(graph), rounds=3, iterations=1
    )
    assert period >= max(graph.time(v) for v in graph.nodes())


def test_bench_rotation_vs_ls_on_wide_machine(benchmark):
    """With free comm and many PEs, cyclo-compaction should approach the
    LS-optimal period (it subsumes retiming via rotation)."""
    from repro.arch import ZeroCommModel

    graph = figure7_csdfg()
    ls_period, _ = min_period_retiming(graph)
    arch = CompletelyConnected(19).with_comm_model(ZeroCommModel())
    cfg = CycloConfig(max_iterations=120, validate_each_step=False)

    result = benchmark.pedantic(
        lambda: cyclo_compact(graph, arch, config=cfg), rounds=1, iterations=1
    )
    write_report(
        "retiming_vs_rotation",
        f"LS minimum period (unlimited PEs, no comm): {ls_period}\n"
        f"cyclo-compaction on 19 free-comm PEs: {result.final_length}",
    )
    assert result.final_length <= critical_path_length(graph)
    # within 2 control steps of the explicit retiming optimum
    assert result.final_length <= ls_period + 2
