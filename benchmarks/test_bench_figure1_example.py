"""Experiment FIG1-4: the paper's running example (Figures 1-4, the
schedule tables of Figures 2, 3 and 6(b)).

The 6-node CSDFG of Figure 1(b) on the 2x2 mesh of Figure 1(a):
start-up schedule of 7 control steps (matching the paper cell for
cell), cyclo-compaction to <= 5 (the paper reaches 5 after three
passes; this implementation's remapping finds 4 or better — see
EXPERIMENTS.md).
"""

from _report import write_report

from repro.core import CycloConfig, cyclo_compact, start_up_schedule
from repro.schedule import render_table, validate_schedule
from repro.workloads import figure1_csdfg, figure1_mesh

PAPER_STARTUP_LENGTH = 7
PAPER_FINAL_LENGTH = 5


def test_bench_figure1_startup(benchmark):
    graph, mesh = figure1_csdfg(), figure1_mesh()
    schedule = benchmark(lambda: start_up_schedule(graph, mesh))
    assert schedule.length == PAPER_STARTUP_LENGTH
    pe1 = [schedule.cell(0, cs) for cs in range(1, 8)]
    assert pe1 == ["A", "B", "B", "D", "E", "E", "F"]  # paper Figure 2(a)
    validate_schedule(graph, mesh, schedule)
    write_report(
        "figure1_startup",
        render_table(schedule, title="Figure 2(a)/6(b): start-up, 2x2 mesh"),
    )


def test_bench_figure1_cyclo_compaction(benchmark):
    graph, mesh = figure1_csdfg(), figure1_mesh()
    cfg = CycloConfig(validate_each_step=False)

    result = benchmark(lambda: cyclo_compact(graph, mesh, config=cfg))
    assert result.initial_length == PAPER_STARTUP_LENGTH
    assert result.final_length <= PAPER_FINAL_LENGTH
    validate_schedule(result.graph, mesh, result.schedule)
    write_report(
        "figure1_final",
        render_table(
            result.schedule,
            title=(
                "Figure 3(b) analogue: cyclo-compacted schedule "
                f"(paper: {PAPER_FINAL_LENGTH} cs, measured: "
                f"{result.final_length} cs)\n"
                f"length trajectory: {result.trace.lengths}"
            ),
        ),
    )


def test_bench_figure1_three_passes(benchmark):
    """The paper's claim: 2 control steps saved within 3 passes."""
    graph, mesh = figure1_csdfg(), figure1_mesh()
    cfg = CycloConfig(max_iterations=3, validate_each_step=False)

    result = benchmark(lambda: cyclo_compact(graph, mesh, config=cfg))
    assert result.final_length <= result.initial_length - 2
