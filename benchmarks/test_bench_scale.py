"""Experiment EXT-SCALE: the thousand-node benchmark tier.

Runs the pinned :data:`repro.perf.scale.SCALE_MATRIX` — seeded
exact-size structural-family graphs (1k–10k nodes) across mesh,
hypercube, torus, ring and complete machines — through full
cyclo-compaction with :mod:`repro.obs` instrumentation, and writes
``BENCH_scale.json`` at the repo root tracking **nodes per second**
per cell.

Hard gates ride along: the 1k-node mesh cell must fully compact in
under 60 seconds, and every cell's warm comm-cost cache hit rate
(published ``arch.cache.hits`` / ``arch.cache.misses`` tallies) must
stay at or above 99% — the lazy band-at-a-time cache counts row builds
as neither hit nor miss, so anything lower means the remap inner loop
started missing.  The contended Cayley cell (1k nodes on a circulant
machine through the two-phase contention pipeline) additionally gates
a nodes-per-second floor and must never bill more than its blind
baseline.  ``BENCH_QUICK=1`` trims to the first cell plus the
contended cell (the CI ``scale-smoke`` mode).
"""

import json
import os
from pathlib import Path

from _report import write_report

from repro.perf.scale import SCALE_MATRIX, cache_hit_rate, run_scale_matrix

REPO_ROOT = Path(__file__).resolve().parent.parent
OUT_JSON = REPO_ROOT / "BENCH_scale.json"

QUICK = os.environ.get("BENCH_QUICK") == "1"

#: The contended 1k-node cell must clear this throughput even on slow
#: CI machines (measured ~4000 nodes/s on a dev box).
CONTENDED_NODES_PER_SECOND_FLOOR = 50.0


def test_bench_scale_tier():
    rows, _records = run_scale_matrix(None, quick=QUICK)
    results = []
    for row in rows:
        hit_rate = cache_hit_rate(row["counters"])
        entry = {
            "workload": row["workload"],
            "family": row["family"],
            "size": row["size"],
            "arch": row["arch"],
            "passes": row["passes"],
            "seed": row["seed"],
            "duration_seconds": round(row["duration_seconds"], 4),
            "nodes_per_second": round(row["nodes_per_second"], 1),
            "initial_length": row["initial_length"],
            "final_length": row["final_length"],
            "stop_reason": row["stop_reason"],
            "cache_hit_rate": round(hit_rate, 6),
        }
        if "contention" in row:
            entry["contention"] = row["contention"]
            entry["blind_cost"] = row["blind_cost"]
            entry["final_cost"] = row["final_cost"]
        results.append(entry)

    payload = {
        "matrix_cells": len(SCALE_MATRIX),
        "quick": QUICK,
        "results": results,
    }
    OUT_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    lines = [
        f"{r['workload']:>18s} on {r['arch']:>10s}: "
        f"{r['duration_seconds']:7.2f}s  {r['nodes_per_second']:8.0f} "
        f"nodes/s  len {r['initial_length']} -> {r['final_length']} "
        f"({r['stop_reason']}, hit {r['cache_hit_rate']:.4f})"
        for r in results
    ]
    write_report("scale", "\n".join(lines))

    # acceptance gate: the 1k-node cell fully compacts inside a minute
    first = results[0]
    assert first["size"] == 1000
    assert first["stop_reason"] == "completed", first
    assert first["duration_seconds"] < 60.0, first

    for r in results:
        # every cell makes schedule progress and completes its budget
        assert r["final_length"] <= r["initial_length"], r
        assert r["stop_reason"] == "completed", r
        # warm comm-cost rows must serve the remap loop: >= 99% hits
        # (the contended cell's occupancy-surcharged rows included)
        assert r["cache_hit_rate"] >= 0.99, r

    # the contended Cayley cell: present, fast enough, never billing
    # more than its contention-blind baseline
    contended = [r for r in results if r.get("contention")]
    assert contended, "contended scale cell went missing"
    for r in contended:
        assert r["nodes_per_second"] >= CONTENDED_NODES_PER_SECOND_FLOOR, r
        assert r["final_cost"] <= r["blind_cost"], r
