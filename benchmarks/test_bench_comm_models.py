"""Experiment EXT-COMM-MODEL: communication cost model ablation.

The paper fixes store-and-forward (`M = hops * volume`).  This bench
re-runs the 19-node experiment under wormhole (cut-through) and free
communication on the same topologies, quantifying how much of the
architecture-dependence the cost model itself contributes: with free
communication the five topologies collapse to (nearly) the same
length; wormhole sits between free and store-and-forward.
"""

from _report import write_report

from repro.arch import (
    StoreAndForwardModel,
    WormholeModel,
    ZeroCommModel,
    paper_architectures,
)
from repro.core import CycloConfig, cyclo_compact
from repro.workloads import figure7_csdfg

CFG = CycloConfig(max_iterations=60, validate_each_step=False)

MODELS = {
    "store-fwd": StoreAndForwardModel(),
    "wormhole": WormholeModel(),
    "free": ZeroCommModel(),
}


def test_bench_comm_models(benchmark):
    graph = figure7_csdfg()

    def run():
        table = {}
        for model_name, model in MODELS.items():
            archs = paper_architectures(8, comm_model=model)
            table[model_name] = {
                key: cyclo_compact(graph, arch, config=CFG).final_length
                for key, arch in archs.items()
            }
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = []
    for model_name, row in table.items():
        spread = max(row.values()) - min(row.values())
        lines.append(
            f"{model_name:10s} "
            + "  ".join(f"{k}={v}" for k, v in row.items())
            + f"  (spread {spread})"
        )
    write_report("comm_models", "\n".join(lines))

    for key in table["store-fwd"]:
        # richer models never make schedules longer
        assert table["free"][key] <= table["wormhole"][key] + 1
        assert table["wormhole"][key] <= table["store-fwd"][key] + 1
    # architecture dependence shrinks as communication gets cheaper
    def spread(row):
        return max(row.values()) - min(row.values())

    assert spread(table["free"]) <= spread(table["store-fwd"])
