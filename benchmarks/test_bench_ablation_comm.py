"""Experiment ABL-COMM: communication awareness ablation (§1's
motivation).

Cyclo-compaction vs. the communication-oblivious baselines
(oblivious list scheduling, rotation scheduling without comm, and the
ICCD'94 topology-blind predecessor), all re-evaluated under the true
store-and-forward model on the linear array — the paper's harshest
communication environment.
"""

from _report import write_report

from repro.analysis import comm_awareness_ablation
from repro.arch import LinearArray, paper_architectures
from repro.baselines import comm_rotation_schedule
from repro.core import CycloConfig, cyclo_compact
from repro.graph import scale_volumes
from repro.workloads import figure7_csdfg, lattice_filter

CFG = CycloConfig(max_iterations=40, validate_each_step=False)


def _run():
    graph = scale_volumes(figure7_csdfg(), 2)
    arch = LinearArray(8)
    rows = comm_awareness_ablation(graph, arch, config=CFG)
    iccd = comm_rotation_schedule(graph, arch, config=CFG)
    rows_text = [
        f"{r.scheduler:20s} claimed={r.claimed:3d} actual="
        f"{r.actual if r.actual is not None else 'infeasible'}"
        for r in rows
    ]
    rows_text.append(
        f"{'iccd94-topology-blind':20s} claimed={iccd.claimed_length:3d} "
        f"actual={iccd.actual_length if iccd.actual_length is not None else 'infeasible'}"
    )
    return rows, iccd, "\n".join(rows_text)


def test_bench_comm_awareness(benchmark):
    rows, iccd, report = benchmark.pedantic(_run, rounds=2, iterations=1)
    write_report("ablation_comm_awareness", report)
    cyclo = next(r for r in rows if r.scheduler == "cyclo-compaction")
    # the architecture-aware optimiser wins (or ties) once the true
    # communication model is charged
    for row in rows:
        assert row.actual is None or cyclo.actual <= row.actual, row
    assert iccd.actual_length is None or cyclo.actual <= iccd.actual_length


def test_bench_oblivious_never_beats_its_claim(benchmark):
    graph = scale_volumes(lattice_filter(6), 2)

    def run():
        return comm_awareness_ablation(graph, LinearArray(8), config=CFG)

    rows = benchmark.pedantic(run, rounds=2, iterations=1)
    for row in rows:
        if row.actual is not None:
            assert row.actual >= row.claimed


def test_bench_comm_awareness_all_architectures(benchmark):
    """Cyclo-compaction vs oblivious rotation across the paper's five
    architectures (aggregate win check)."""
    graph = scale_volumes(figure7_csdfg(), 2)
    archs = paper_architectures(8)

    def run():
        out = {}
        for key, arch in archs.items():
            rows = comm_awareness_ablation(graph, arch, config=CFG)
            out[key] = {r.scheduler: r for r in rows}
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = []
    for key, by_sched in results.items():
        cyclo = by_sched["cyclo-compaction"]
        rot = by_sched["rotation-no-comm"]
        lines.append(
            f"{key}: cyclo={cyclo.actual} rotation-no-comm="
            f"{rot.actual if rot.actual is not None else 'infeasible'}"
        )
        assert rot.actual is None or cyclo.actual <= rot.actual
    write_report("ablation_comm_all_archs", "\n".join(lines))
