"""Experiment EXT-ETF: cyclo-compaction vs ETF list scheduling.

ETF (earliest task first) is a strong communication-aware DAG
heuristic contemporary with the paper, but it cannot pipeline across
loop iterations.  The bench checks that cyclo-compaction dominates ETF
on cyclic workloads across all five architectures.
"""

from _report import write_report

from repro.arch import paper_architectures
from repro.baselines import etf_schedule
from repro.core import CycloConfig, cyclo_compact
from repro.workloads import figure7_csdfg, lattice_filter, make_workload

CFG = CycloConfig(max_iterations=60, validate_each_step=False)

WORKLOADS = ["figure7", "lattice8", "diffeq", "volterra3"]


def test_bench_etf_comparison(benchmark):
    archs = paper_architectures(8)

    def run():
        rows = []
        for name in WORKLOADS:
            graph = make_workload(name)
            for key, arch in archs.items():
                etf_len = etf_schedule(graph, arch).length
                ours = cyclo_compact(graph, arch, config=CFG).final_length
                rows.append((name, key, etf_len, ours))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"{name:12s} {key:4s} etf={etf_len:3d} cyclo={ours:3d}"
        for name, key, etf_len, ours in rows
    ]
    write_report("etf_comparison", "\n".join(lines))
    # loop pipelining never loses to one-iteration list scheduling
    for name, key, etf_len, ours in rows:
        assert ours <= etf_len, (name, key)


def test_bench_etf_speed(benchmark):
    """ETF's own cost on a mid-size workload (timing reference)."""
    graph = lattice_filter(8)
    arch = paper_architectures(8)["2-d"]
    schedule = benchmark(lambda: etf_schedule(graph, arch))
    assert schedule.num_tasks == graph.num_nodes
