"""Experiment ABL-PF: start-up priority-function ablation.

The paper's PF (Definition 3.6) blends pending data volume, deferral
and mobility.  This bench compares it with mobility-only, FIFO and
volume-only priorities over the bundled workloads and a random suite;
the paper's PF must win or tie in aggregate.
"""

from _report import write_report

from repro.analysis import PRIORITY_VARIANTS, priority_ablation
from repro.arch import paper_architectures
from repro.workloads import SuiteSpec, make_workload, random_suite

WORKLOAD_NAMES = ["figure1", "figure7", "lattice4", "biquad2", "diffeq"]


def _aggregate():
    archs = paper_architectures(8)
    totals = {name: 0 for name in PRIORITY_VARIANTS}
    rows = []
    graphs = [make_workload(n) for n in WORKLOAD_NAMES]
    graphs += random_suite(SuiteSpec(count=4, num_nodes=14, seed=11))
    for graph in graphs:
        for arch_key in ("lin", "2-d"):
            lengths = priority_ablation(graph, archs[arch_key])
            for name, value in lengths.items():
                totals[name] += value
            rows.append(f"{graph.name:24s} {arch_key:4s} " + "  ".join(
                f"{name}={lengths[name]}" for name in PRIORITY_VARIANTS
            ))
    rows.append("")
    rows.append("totals: " + "  ".join(f"{k}={v}" for k, v in totals.items()))
    return totals, "\n".join(rows)


def test_bench_priority_ablation(benchmark):
    totals, report = benchmark.pedantic(_aggregate, rounds=2, iterations=1)
    write_report("ablation_priority", report)
    # the paper's PF is at least competitive with every alternative
    assert totals["paper-PF"] <= min(totals.values()) * 1.05
