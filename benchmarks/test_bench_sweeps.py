"""Experiment EXT-SWEEP: parameter sweeps (PE count, volume, slowdown).

Scaling curves behind the examples: more PEs help until the iteration
bound or communication binds; heavier messages hurt; slowdown lowers
the bound and unlocks deeper pipelining (the rationale for the paper's
Table 11 transform).
"""

import math

from _report import write_report

from repro.analysis import pe_count_sweep, slowdown_sweep, volume_sweep
from repro.core import CycloConfig
from repro.workloads import elliptic_wave_filter, figure7_csdfg

CFG = CycloConfig(max_iterations=40, validate_each_step=False)


def test_bench_pe_count_sweep(benchmark):
    graph = figure7_csdfg()
    points = benchmark.pedantic(
        lambda: pe_count_sweep(graph, "mesh", [1, 2, 4, 8, 16], config=CFG),
        rounds=1,
        iterations=1,
    )
    write_report(
        "sweep_pe_count",
        "\n".join(f"PEs={p.x}: {p.init} -> {p.after}" for p in points),
    )
    # saturation: the widest machine is no worse than the narrowest
    assert points[-1].after <= points[0].after
    for p in points:
        assert p.after >= math.ceil(p.bound)


def test_bench_volume_sweep(benchmark):
    graph = figure7_csdfg()
    points = benchmark.pedantic(
        lambda: volume_sweep(graph, "linear", 8, [1, 2, 4], config=CFG),
        rounds=1,
        iterations=1,
    )
    write_report(
        "sweep_volume",
        "\n".join(f"volume x{p.x}: {p.init} -> {p.after}" for p in points),
    )
    # heavier messages never help (allowing 1 cs of heuristic noise)
    assert points[-1].after >= points[0].after - 1


def test_bench_slowdown_sweep(benchmark):
    graph = elliptic_wave_filter()
    points = benchmark.pedantic(
        lambda: slowdown_sweep(graph, "complete", 8, [1, 2, 3], config=CFG),
        rounds=1,
        iterations=1,
    )
    write_report(
        "sweep_slowdown",
        "\n".join(
            f"slowdown x{p.x}: {p.init} -> {p.after} (bound {p.bound})"
            for p in points
        ),
    )
    # slowdown divides the bound, so deeper pipelining becomes possible
    assert points[-1].bound == points[0].bound / 3
    assert points[-1].after <= points[0].after
