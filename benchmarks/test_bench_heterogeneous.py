"""Experiment EXT-HETERO: heterogeneous processor speeds (extension).

Sweeps the number of half-speed PEs on an 8-PE completely connected
machine and checks the scheduler degrades gracefully: schedule lengths
are non-decreasing (within heuristic noise) as fast PEs are replaced by
slow ones, and an all-slow machine costs at most the slowdown factor.
"""

from _report import write_report

from repro.arch import CompletelyConnected
from repro.core import CycloConfig, cyclo_compact
from repro.workloads import figure7_csdfg

CFG = CycloConfig(max_iterations=50, validate_each_step=False)


def test_bench_heterogeneous_sweep(benchmark):
    graph = figure7_csdfg()

    def run():
        lengths = {}
        for slow in (0, 2, 4, 6, 8):
            scales = [2] * slow + [1] * (8 - slow)
            arch = CompletelyConnected(8).with_time_scales(scales)
            lengths[slow] = cyclo_compact(graph, arch, config=CFG).final_length
        return lengths

    lengths = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"slow PEs={slow}: final length {length}"
        for slow, length in lengths.items()
    ]
    write_report("heterogeneous_sweep", "\n".join(lines))

    # graceful degradation: all-slow costs at most 2x the all-fast
    # machine (the slowdown factor), plus heuristic slack
    assert lengths[8] <= 2 * lengths[0] + 2
    # replacing every fast PE with slow ones cannot help
    assert lengths[8] >= lengths[0]
