"""Experiment EXT-CONTENTION: how optimistic is the no-congestion
assumption (§3)?

Replays the compacted 19-node schedules over single-channel links and
measures realized queueing and lateness per architecture.  Expected
shape: the completely connected machine is nearly congestion-free
(disjoint point-to-point links), the ring/linear array suffer most
(shared bisection links).
"""

from _report import write_report

from repro.arch import paper_architectures
from repro.core import CycloConfig, cyclo_compact
from repro.sim import simulate_contended
from repro.workloads import figure7_csdfg

CFG = CycloConfig(max_iterations=60, validate_each_step=False)


def test_bench_contention(benchmark):
    graph = figure7_csdfg()
    archs = paper_architectures(8)

    def run():
        rows = {}
        for key, arch in archs.items():
            result = cyclo_compact(graph, arch, config=CFG)
            report = simulate_contended(
                result.graph, arch, result.schedule, iterations=6
            )
            rows[key] = (result.final_length, report)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = []
    for key, (length, report) in rows.items():
        lines.append(
            f"{key}: L={length} messages={len(report.messages)} "
            f"late={report.late_messages} max_lateness={report.max_lateness} "
            f"queueing={report.total_queueing}"
        )
    write_report("contention_19node", "\n".join(lines))

    # completely connected has the least queueing of the five
    com_queueing = rows["com"][1].total_queueing
    assert all(
        com_queueing <= report.total_queueing
        for key, (_, report) in rows.items()
    )
    # single-channel lateness exists somewhere: the assumption is
    # genuinely optimistic on the poorer topologies
    assert any(report.late_messages > 0 for _, report in rows.values())
