"""Shared reporting helpers for the benchmark harness.

Each benchmark regenerates one of the paper's tables/figures and, in
addition to the pytest-benchmark timing, writes the reproduced rows to
``benchmarks/out/<name>.txt`` so they can be diffed against the paper's
published values (see EXPERIMENTS.md).
"""

from __future__ import annotations

from pathlib import Path

OUT_DIR = Path(__file__).resolve().parent / "out"


def write_report(name: str, text: str) -> Path:
    """Write (and echo) one reproduced table."""
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / f"{name}.txt"
    path.write_text(text.rstrip() + "\n")
    print(f"\n[{name}]\n{text}")
    return path
