"""Experiment EXT-OPT: optimality gap of the heuristics on tiny
instances.

The exact branch-and-bound scheduler certifies, per instance, the
smallest legal length for a fixed graph.  The bench measures

* the *placement* gap of the start-up scheduler (same graph, no
  retiming),
* the gap of cyclo-compaction's final placement on its own retimed
  graph (how much the remapping search left on the table).
"""

from _report import write_report

from repro.arch import LinearArray, Mesh2D
from repro.baselines import exact_minimum_length
from repro.core import CycloConfig, cyclo_compact, start_up_schedule
from repro.graph import random_csdfg
from repro.workloads import figure1_csdfg, figure1_mesh

CFG = CycloConfig(max_iterations=30, validate_each_step=False)


def test_bench_optimality_gap(benchmark):
    instances = [("figure1", figure1_csdfg(), figure1_mesh())]
    for seed in range(6):
        g = random_csdfg(
            6, seed=seed, edge_prob=0.3, back_edge_prob=0.2, max_time=2
        )
        arch = Mesh2D(2, 2) if seed % 2 else LinearArray(3)
        instances.append((g.name, g, arch))

    def run():
        rows = []
        for name, g, arch in instances:
            startup = start_up_schedule(g, arch).length
            exact_fixed, _ = exact_minimum_length(g, arch)
            result = cyclo_compact(g, arch, config=CFG)
            exact_retimed, _ = exact_minimum_length(result.graph, arch)
            rows.append(
                (name, startup, exact_fixed, result.final_length, exact_retimed)
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"{name:12s} startup={su:2d} exact(no-retime)={ef:2d} "
        f"cyclo={cy:2d} exact(retimed)={er:2d}"
        for name, su, ef, cy, er in rows
    ]
    gaps_startup = [su - ef for _, su, ef, _, _ in rows]
    gaps_cyclo = [cy - er for _, _, _, cy, er in rows]
    lines.append(
        f"\nstartup placement gap: total {sum(gaps_startup)} over "
        f"{len(rows)} instances; cyclo placement gap: total {sum(gaps_cyclo)}"
    )
    write_report("optimality_gap", "\n".join(lines))

    for name, su, ef, cy, er in rows:
        assert su >= ef, name          # heuristics never beat the oracle
        assert cy >= er, name
        assert cy - er <= 2, name      # remapping stays near-optimal
    # start-up is placement-optimal on the paper's own example
    assert rows[0][1] == rows[0][2]
