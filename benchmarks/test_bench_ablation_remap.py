"""Experiment ABL-REMAP: remapping slot-search ablation.

The paper's remapping takes the earliest slot at/after the
anticipation bound ("first-fit"); this implementation scores every
candidate slot by its implied schedule length ("implied").  The bench
quantifies what the stronger search buys — and therefore explains why
the reproduction sometimes beats the published lengths.
"""

from _report import write_report

from repro.arch import paper_architectures
from repro.core import CycloConfig, cyclo_compact
from repro.graph import slowdown
from repro.workloads import elliptic_wave_filter, figure7_csdfg


def _run(graph, archs, strategy):
    cfg = CycloConfig(
        max_iterations=80,
        validate_each_step=False,
        remap_strategy=strategy,
    )
    return {
        key: cyclo_compact(graph, arch, config=cfg).final_length
        for key, arch in archs.items()
    }


def test_bench_remap_strategy(benchmark):
    archs = paper_architectures(8)
    workloads = {
        "figure7": figure7_csdfg(),
        "elliptic(slow3)": slowdown(elliptic_wave_filter(), 3),
    }

    def run():
        return {
            name: {
                strat: _run(graph, archs, strat)
                for strat in ("implied", "first-fit")
            }
            for name, graph in workloads.items()
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = []
    for name, by_strategy in results.items():
        for strat, row in by_strategy.items():
            lines.append(
                f"{name:16s} {strat:10s} "
                + "  ".join(f"{k}={v}" for k, v in row.items())
                + f"  (total {sum(row.values())})"
            )
    write_report("ablation_remap_strategy", "\n".join(lines))

    for name, by_strategy in results.items():
        total_implied = sum(by_strategy["implied"].values())
        total_ff = sum(by_strategy["first-fit"].values())
        assert total_implied <= total_ff, name
